//! Effective syntaxes for finite queries — the positive side of the paper.
//!
//! An *effective syntax* (Section 1.4) is "a recursive subclass of safe
//! formulas, such that every safe formula is equivalent to one in this
//! subclass". Each syntax here is given in two forms: a **transform**
//! that maps an arbitrary formula to a guaranteed-finite one (equivalent
//! whenever the input was already finite), and the induced **enumeration**
//! (apply the transform to an exhaustive formula enumeration).
//!
//! * [`ActiveDomainSyntax`] — the equality-only domain: "the easiest
//!   effective syntax for this case consists of restricting the answers
//!   for all formulas to the active domain";
//! * [`FinitizationSyntax`] — Theorem 2.2 for any extension of ⟨ℕ, <⟩;
//! * [`SuccessorSyntax`] — Theorem 2.7 for ⟨ℕ, ′⟩, restricting answers to
//!   the *extended* active domain of radius 2^q;
//! * [`OrderedTraceExtension`] — Corollary 2.4 applied to **T**: adding a
//!   length-lexicographic order (isomorphic to ⟨ℕ, <⟩) makes the
//!   finitization syntax available — but by Corollary 3.2 the extended
//!   theory is necessarily **undecidable**, so the syntax exists while
//!   effective query answering is lost.

use crate::enumerate::FormulaSpace;
use crate::finitize::finitize;
use fq_domains::DomainError;
use fq_logic::{fresh_var, Formula, Term};
use fq_relational::Schema;

/// The active-domain defining formula Δ(x) over a scheme: `x` occurs in
/// some stored tuple or equals one of the listed constant terms. ("It is
/// known that the active domain is definable in the relational calculus.")
pub fn active_domain_formula(schema: &Schema, var: &str, extra_constants: &[Term]) -> Formula {
    let mut disjuncts = Vec::new();
    for (name, arity) in schema.relations() {
        for position in 0..arity {
            // ∃ȳ R(y₁, …, x at `position`, …, y_arity).
            let mut args = Vec::with_capacity(arity);
            let mut bound = Vec::new();
            for i in 0..arity {
                if i == position {
                    args.push(Term::var(var));
                } else {
                    let y = format!("_ad{i}");
                    bound.push(y.clone());
                    args.push(Term::var(y));
                }
            }
            disjuncts.push(Formula::exists_many(bound, Formula::pred(name, args)));
        }
    }
    for c in schema.constants() {
        disjuncts.push(Formula::eq(Term::var(var), Term::named(c.clone())));
    }
    for t in extra_constants {
        disjuncts.push(Formula::eq(Term::var(var), t.clone()));
    }
    Formula::or(disjuncts)
}

/// The constants of a formula as ground terms (for Δ's constant part).
pub fn formula_constants(phi: &Formula) -> Vec<Term> {
    let (nats, strs) = phi.literal_constants();
    nats.into_iter()
        .map(Term::Nat)
        .chain(strs.into_iter().map(Term::Str))
        .collect()
}

/// The active-domain syntax for the pure-equality domain.
#[derive(Clone, Debug)]
pub struct ActiveDomainSyntax {
    pub schema: Schema,
}

impl ActiveDomainSyntax {
    /// Restrict every answer variable to the active domain:
    /// `φ ∧ ⋀ᵢ Δ(xᵢ)`.
    pub fn transform(&self, phi: &Formula) -> Formula {
        let consts = formula_constants(phi);
        let guards = phi
            .free_vars()
            .into_iter()
            .map(|v| active_domain_formula(&self.schema, &v, &consts));
        Formula::and(std::iter::once(phi.clone()).chain(guards))
    }
}

/// The Theorem 2.2 finitization syntax over a formula space: the r-th
/// member is the finitization of the r-th formula.
#[derive(Clone, Debug)]
pub struct FinitizationSyntax {
    pub space: FormulaSpace,
}

impl FinitizationSyntax {
    /// The first `n` members of the enumerated syntax.
    pub fn enumerate(&self, n: usize) -> Vec<Formula> {
        self.space.iter().take(n).map(|f| finitize(&f)).collect()
    }
}

/// The Theorem 2.7 syntax for ⟨ℕ, ′⟩.
#[derive(Clone, Debug)]
pub struct SuccessorSyntax {
    pub schema: Schema,
}

impl SuccessorSyntax {
    /// The extended-active-domain radius for a formula: "if the quantifier
    /// depth of the formula is q, the new constants introduced under the
    /// quantifier-elimination procedure are within the distance 2^q".
    pub fn radius(phi: &Formula) -> u64 {
        1u64 << phi.quantifier_depth().min(62)
    }

    /// The extended-active-domain membership formula Δ⁺(x): within
    /// distance `radius` of an active-domain element or of 0.
    pub fn extended_active_domain(&self, var: &str, radius: u64, consts: &[Term]) -> Formula {
        let taken: std::collections::BTreeSet<String> = [var.to_string()].into();
        let y = fresh_var("_ead", &taken);
        let delta_y = active_domain_formula(&self.schema, &y, consts);
        // ⋁_{k ≤ r} (x = y⁽ᵏ⁾ ∨ y = x⁽ᵏ⁾)
        let near_y = Formula::or((0..=radius).flat_map(|k| {
            [
                Formula::eq(Term::var(var), Term::var(y.clone()).succ_n(k)),
                Formula::eq(Term::var(y.clone()), Term::var(var).succ_n(k)),
            ]
        }));
        let near_active = Formula::exists(y.clone(), Formula::and([delta_y, near_y]));
        // ⋁_{k ≤ r} x = 0⁽ᵏ⁾ — "the active domain plus the elements that
        // are within the specified range … (and 0)".
        let near_zero =
            Formula::or((0..=radius).map(|k| Formula::eq(Term::var(var), Term::Nat(k))));
        Formula::or([near_active, near_zero])
    }

    /// The Theorem 2.7 transform: `φ ∧ ⋀ᵢ Δ⁺_q(xᵢ)`.
    pub fn transform(&self, phi: &Formula) -> Formula {
        let radius = Self::radius(phi);
        let consts = formula_constants(phi);
        let guards = phi
            .free_vars()
            .into_iter()
            .map(|v| self.extended_active_domain(&v, radius, &consts));
        Formula::and(std::iter::once(phi.clone()).chain(guards))
    }
}

/// Corollary 2.4 applied to the trace domain: **T** extended with the
/// length-lexicographic order `⊑` (rendered as the binary predicate
/// `llex`), which is isomorphic to ⟨ℕ, <⟩ via [`Self::index`].
///
/// The finitization syntax of Theorem 2.2 therefore works over this
/// extension — but Corollary 3.2 proves its first-order theory is
/// **undecidable**, so [`Self::decide`] only offers bounded
/// model-checking refutation, never a full decision.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrderedTraceExtension;

impl OrderedTraceExtension {
    /// Length-lexicographic order on domain strings (`1 < & < * < #`).
    pub fn llex_lt(a: &str, b: &str) -> bool {
        let rank = |c: char| match c {
            '1' => 0u8,
            '&' => 1,
            '*' => 2,
            '#' => 3,
            _ => 4,
        };
        a.len() < b.len() || (a.len() == b.len() && a.chars().map(rank).lt(b.chars().map(rank)))
    }

    /// The position of a string in the canonical enumeration — the
    /// isomorphism with ⟨ℕ, <⟩.
    pub fn index(s: &str) -> u128 {
        // Strings of length < n: (4^n − 1) / 3; then base-4 offset.
        let n = s.len() as u32;
        let shorter = (4u128.pow(n) - 1) / 3;
        let offset = s.chars().fold(0u128, |acc, c| {
            acc * 4
                + match c {
                    '1' => 0,
                    '&' => 1,
                    '*' => 2,
                    '#' => 3,
                    _ => 0,
                }
        });
        shorter + offset
    }

    /// The Theorem 2.2 finitization over the extension, with `<` replaced
    /// by the order predicate `llex`.
    pub fn finitize(&self, phi: &Formula) -> Formula {
        let free: Vec<String> = phi.free_vars().into_iter().collect();
        if free.is_empty() {
            return phi.clone();
        }
        let taken = phi.all_vars();
        let m = fresh_var("m", &taken);
        let bound = Formula::and(
            free.iter()
                .map(|x| Formula::pred("llex", vec![Term::var(x.clone()), Term::var(m.clone())])),
        );
        let guard = Formula::exists(
            m,
            Formula::forall_many(free, Formula::implies(phi.clone(), bound)),
        );
        Formula::and([phi.clone(), guard])
    }

    /// Corollary 3.2: no decision procedure can exist for this extension
    /// (otherwise the finitization syntax would contradict Theorem 3.1).
    /// Only bounded refutation is offered: evaluate the sentence over the
    /// first `n` strings; a counterexample to a universal claim is final,
    /// anything else is `BudgetExhausted`.
    pub fn decide(&self, _sentence: &Formula) -> Result<bool, DomainError> {
        Err(DomainError::BudgetExhausted {
            detail: "the theory of T extended with a length-lex order is \
                     undecidable (Corollary 3.2); use check_over_prefix for \
                     bounded model checking"
                .to_string(),
        })
    }

    /// Bounded model checking over the first `n` strings of the domain.
    pub fn check_over_prefix(&self, sentence: &Formula, n: usize) -> Result<bool, DomainError> {
        use fq_logic::eval::{eval_sentence, Interpretation};
        struct Interp;
        impl Interpretation for Interp {
            type Elem = String;
            fn nat(&self, _n: u64) -> Result<String, fq_logic::LogicError> {
                Err(fq_logic::LogicError::eval("no numerals in T"))
            }
            fn str_lit(&self, s: &str) -> Result<String, fq_logic::LogicError> {
                Ok(s.to_string())
            }
            fn func(&self, name: &str, args: &[String]) -> Result<String, fq_logic::LogicError> {
                match (name, args) {
                    ("w", [s]) => Ok(fq_turing::trace::validate_trace(s)
                        .map(|i| i.word)
                        .unwrap_or_default()),
                    ("m", [s]) => Ok(fq_turing::trace::validate_trace(s)
                        .map(|i| i.machine_str)
                        .unwrap_or_default()),
                    _ => Err(fq_logic::LogicError::eval(format!(
                        "unknown function {name}"
                    ))),
                }
            }
            fn pred(&self, name: &str, args: &[String]) -> Result<bool, fq_logic::LogicError> {
                match (name, args) {
                    ("llex", [a, b]) => Ok(OrderedTraceExtension::llex_lt(a, b)),
                    ("P", [m, w, p]) => Ok(fq_turing::trace::p_predicate(m, w, p)),
                    _ => Err(fq_logic::LogicError::eval(format!(
                        "unknown predicate {name}"
                    ))),
                }
            }
        }
        let universe = fq_domains::traces::enumerate_strings(n);
        Ok(eval_sentence(&Interp, &universe, sentence)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_domains::{DecidableTheory, NatSucc, Presburger};
    use fq_logic::parse_formula;
    use fq_relational::active_eval::{eval_query, NoOps};
    use fq_relational::{State, Value};

    fn fathers_schema() -> Schema {
        Schema::new().with_relation("F", 2)
    }

    fn fathers_state() -> State {
        State::new(fathers_schema())
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    #[test]
    fn active_domain_formula_matches_stored_values() {
        let delta = active_domain_formula(&fathers_schema(), "x", &[]);
        let ans = eval_query(&fathers_state(), &NoOps, &delta, &["x".to_string()]).unwrap();
        let vals: Vec<u64> = ans
            .into_iter()
            .map(|t| match &t[0] {
                Value::Nat(n) => *n,
                _ => panic!(),
            })
            .collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }

    #[test]
    fn active_domain_syntax_makes_unsafe_queries_safe() {
        // ¬F(x, y) is unsafe; its transform restricts both variables.
        let syntax = ActiveDomainSyntax {
            schema: fathers_schema(),
        };
        let phi = parse_formula("!F(x, y)").unwrap();
        let t = syntax.transform(&phi);
        assert!(fq_relational::is_safe_range(&fathers_schema(), &t));
        // And evaluates to the finite complement within the active domain.
        let ans = eval_query(
            &fathers_state(),
            &NoOps,
            &t,
            &["x".to_string(), "y".to_string()],
        )
        .unwrap();
        assert_eq!(ans.len(), 9 - 2); // 3×3 pairs minus the 2 stored
    }

    #[test]
    fn active_domain_syntax_preserves_domain_independent_queries() {
        let syntax = ActiveDomainSyntax {
            schema: fathers_schema(),
        };
        let phi = parse_formula("exists y. F(x, y)").unwrap();
        let t = syntax.transform(&phi);
        let before = eval_query(&fathers_state(), &NoOps, &phi, &["x".to_string()]).unwrap();
        let after = eval_query(&fathers_state(), &NoOps, &t, &["x".to_string()]).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn finitization_syntax_enumerates_finite_formulas() {
        let syntax = FinitizationSyntax {
            space: FormulaSpace {
                predicates: vec![("<".into(), 2)],
                constants: vec![Term::Nat(0), Term::Nat(3)],
                variables: vec!["x".to_string()],
                unary_functions: vec![],
                with_equality: true,
            },
        };
        // Every enumerated member is finite over Presburger: its own
        // finitization is equivalent to it.
        for member in syntax.enumerate(25) {
            let refin = finitize(&member);
            assert!(
                Presburger.equivalent(&member, &refin).unwrap(),
                "member `{member}` is not finite"
            );
        }
    }

    #[test]
    fn successor_syntax_radius_is_two_to_the_depth() {
        let phi = parse_formula("exists y. x = y'").unwrap();
        assert_eq!(SuccessorSyntax::radius(&phi), 2);
        let deep = parse_formula("exists a. exists b. exists d. x = a & a = b & b = d").unwrap();
        assert_eq!(SuccessorSyntax::radius(&deep), 8);
    }

    #[test]
    fn successor_transform_is_equivalent_for_finite_queries() {
        // Over scheme R/1 with state {5}: φ(x) := ∃y R(y) ∧ x = y′ is
        // finite; the transform must yield the same pure-domain answers.
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema.clone()).with_tuple("R", vec![Value::Nat(5)]);
        let syntax = SuccessorSyntax { schema };
        let phi = parse_formula("exists y. R(y) & x = y'").unwrap();
        let t = syntax.transform(&phi);
        let phi_d = fq_relational::translate_to_domain_formula(&phi, &state);
        let t_d = fq_relational::translate_to_domain_formula(&t, &state);
        assert!(NatSucc.equivalent(&phi_d, &t_d).unwrap());
    }

    #[test]
    fn successor_transform_truncates_infinite_queries() {
        // φ(x) := ¬R(x) is infinite; the transform is a strict subset.
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema.clone()).with_tuple("R", vec![Value::Nat(5)]);
        let syntax = SuccessorSyntax { schema };
        let phi = parse_formula("!R(x)").unwrap();
        let t = syntax.transform(&phi);
        let phi_d = fq_relational::translate_to_domain_formula(&phi, &state);
        let t_d = fq_relational::translate_to_domain_formula(&t, &state);
        assert!(!NatSucc.equivalent(&phi_d, &t_d).unwrap());
        // The transform still has answers near the active domain.
        let radius = SuccessorSyntax::radius(&phi);
        assert_eq!(radius, 1);
        // 5−1, 5+1 are in Δ⁺ and satisfy ¬R; also 0..=1 near zero.
        let witness = fq_logic::substitute(&t_d, "x", &Term::Nat(4));
        let closed = Formula::forall_many(Vec::<String>::new(), witness);
        assert!(NatSucc.decide(&closed).unwrap());
    }

    #[test]
    fn llex_order_is_a_linear_order_on_samples() {
        let strings = fq_domains::traces::enumerate_strings(40);
        for (i, a) in strings.iter().enumerate() {
            for (j, b) in strings.iter().enumerate() {
                assert_eq!(OrderedTraceExtension::llex_lt(a, b), i < j, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn llex_index_is_the_enumeration_position() {
        let strings = fq_domains::traces::enumerate_strings(100);
        for (i, s) in strings.iter().enumerate() {
            assert_eq!(OrderedTraceExtension::index(s), i as u128, "{s}");
        }
    }

    #[test]
    fn ordered_extension_refuses_to_decide() {
        let err = OrderedTraceExtension.decide(&parse_formula("exists x. x = x").unwrap());
        assert!(matches!(err, Err(DomainError::BudgetExhausted { .. })));
    }

    #[test]
    fn ordered_extension_bounded_checking() {
        let ext = OrderedTraceExtension;
        // Within any finite prefix there is a maximal element, so this
        // bounded check "verifies" a sentence false in the full domain —
        // the honest limitation of model checking an infinite structure.
        let has_max = parse_formula("exists x. forall y. !llex(x, y)").unwrap();
        assert!(ext.check_over_prefix(&has_max, 30).unwrap());
        // Irreflexivity holds in every prefix and in the full domain.
        let irref = parse_formula("forall x. !llex(x, x)").unwrap();
        assert!(ext.check_over_prefix(&irref, 30).unwrap());
    }

    #[test]
    fn ordered_extension_finitization_shape() {
        let phi = parse_formula("P(m0, w0, x)").unwrap();
        let fin = OrderedTraceExtension.finitize(&phi);
        assert!(fin.predicate_names().contains("llex"));
        assert_eq!(fin.free_vars(), phi.free_vars());
    }
}
