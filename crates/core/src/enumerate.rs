//! Exhaustive enumeration of first-order formulas.
//!
//! Theorem 3.1 speaks of "a recursive enumeration φ₁(x), φ₂(x), … of
//! finite formulas"; both the positive syntaxes (which enumerate the
//! finitizations of *all* formulas) and the negative reduction (which
//! dovetails over machines × candidate formulas) need a concrete
//! enumeration of formulas. [`FormulaSpace`] enumerates every formula
//! over a fixed stock of predicates, constants, variables, and unary
//! functions, ordered by AST size.

use fq_engine::Engine;
use fq_logic::{Formula, Sym, Term};

/// A finitely-generated space of formulas.
///
/// Symbol names are [`Sym`]s (`Arc<str>`), so the per-atom name "clone"
/// in [`FormulaSpace::atoms`] is a reference-count bump, not a heap
/// allocation — enumeration used to allocate a fresh `String` for every
/// generated atom.
#[derive(Clone, Debug)]
pub struct FormulaSpace {
    /// Predicates as `(name, arity)`.
    pub predicates: Vec<(Sym, usize)>,
    /// Ground constant terms available as leaves.
    pub constants: Vec<Term>,
    /// Variable names available as leaves.
    pub variables: Vec<String>,
    /// Unary function symbols applicable to leaf terms.
    pub unary_functions: Vec<Sym>,
    /// Include equality atoms.
    pub with_equality: bool,
}

impl FormulaSpace {
    /// Leaf terms: variables, constants, and single applications of the
    /// unary functions to them.
    fn terms(&self) -> Vec<Term> {
        let vars: Vec<Sym> = self.variables.iter().map(Sym::from).collect();
        let mut base: Vec<Term> = vars
            .into_iter()
            .map(Term::Var)
            .chain(self.constants.iter().cloned())
            .collect();
        let mut wrapped = Vec::new();
        for f in &self.unary_functions {
            for t in &base {
                wrapped.push(Term::App(f.clone(), vec![t.clone()]));
            }
        }
        base.extend(wrapped);
        base
    }

    /// All atoms of the space.
    pub fn atoms(&self) -> Vec<Formula> {
        self.atoms_with(&Engine::sequential())
    }

    /// [`FormulaSpace::atoms`] through a shared [`Engine`]: the atoms of
    /// each predicate are generated on separate workers and concatenated
    /// in predicate order, so the result is identical to the sequential
    /// enumeration.
    pub fn atoms_with(&self, engine: &Engine) -> Vec<Formula> {
        let terms = self.terms();
        let per_pred = engine.parallel_map(&self.predicates, |(name, arity)| {
            let mut out = Vec::new();
            let mut idx = vec![0usize; *arity];
            loop {
                out.push(Formula::Pred(
                    name.clone(),
                    idx.iter().map(|&i| terms[i].clone()).collect(),
                ));
                let mut pos = 0;
                loop {
                    if pos == *arity {
                        break;
                    }
                    idx[pos] += 1;
                    if idx[pos] < terms.len() {
                        break;
                    }
                    idx[pos] = 0;
                    pos += 1;
                }
                if pos == *arity {
                    break;
                }
            }
            out
        });
        let mut out: Vec<Formula> = per_pred.into_iter().flatten().collect();
        if self.with_equality {
            for a in &terms {
                for b in &terms {
                    out.push(Formula::eq(a.clone(), b.clone()));
                }
            }
        }
        out
    }

    /// Iterate over all formulas of the space, by increasing *rank*
    /// (connective depth), atoms first. Within a rank, formulas follow
    /// the construction order. Every formula of the space appears exactly
    /// once at its minimal rank.
    pub fn iter(&self) -> FormulaIter<'_> {
        FormulaIter {
            space: self,
            ranks: Vec::new(),
            rank: 0,
            index: 0,
        }
    }

    /// Formulas of exactly the given rank: rank 0 is the atoms; rank
    /// `n + 1` applies one connective or quantifier to rank-≤n formulas
    /// (with at least one operand of rank exactly n, avoiding duplicates).
    #[allow(clippy::needless_range_loop)]
    fn formulas_of_rank(&self, ranks: &[Vec<Formula>], n: usize) -> Vec<Formula> {
        if n == 0 {
            return self.atoms();
        }
        let mut out = Vec::new();
        let prev = &ranks[n - 1];
        // Negation of rank-(n−1) formulas.
        for f in prev {
            out.push(Formula::Not(Box::new(f.clone())));
        }
        // Quantifiers over rank-(n−1) formulas.
        for v in &self.variables {
            for f in prev {
                out.push(Formula::Exists(v.clone(), Box::new(f.clone())));
                out.push(Formula::Forall(v.clone(), Box::new(f.clone())));
            }
        }
        // Binary connectives with max rank = n−1.
        for i in 0..n {
            for a in &ranks[i] {
                for b in prev {
                    out.push(Formula::And(vec![a.clone(), b.clone()]));
                    out.push(Formula::Or(vec![a.clone(), b.clone()]));
                }
            }
        }
        for a in prev {
            for j in 0..n.saturating_sub(1) {
                for b in &ranks[j] {
                    out.push(Formula::And(vec![a.clone(), b.clone()]));
                    out.push(Formula::Or(vec![a.clone(), b.clone()]));
                }
            }
        }
        out
    }
}

/// Iterator over a [`FormulaSpace`].
pub struct FormulaIter<'a> {
    space: &'a FormulaSpace,
    ranks: Vec<Vec<Formula>>,
    rank: usize,
    index: usize,
}

impl Iterator for FormulaIter<'_> {
    type Item = Formula;

    fn next(&mut self) -> Option<Formula> {
        loop {
            if self.rank == self.ranks.len() {
                let next = self.space.formulas_of_rank(&self.ranks, self.rank);
                if next.is_empty() {
                    return None;
                }
                self.ranks.push(next);
            }
            if self.index < self.ranks[self.rank].len() {
                let f = self.ranks[self.rank][self.index].clone();
                self.index += 1;
                return Some(f);
            }
            self.rank += 1;
            self.index = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_space() -> FormulaSpace {
        FormulaSpace {
            predicates: vec![("R".into(), 1)],
            constants: vec![Term::Nat(0)],
            variables: vec!["x".to_string()],
            unary_functions: vec![],
            with_equality: true,
        }
    }

    #[test]
    fn atoms_of_tiny_space() {
        let atoms = tiny_space().atoms();
        // R(x), R(0), and 4 equalities over {x, 0}.
        assert_eq!(atoms.len(), 2 + 4);
    }

    #[test]
    fn enumeration_is_duplicate_free_in_prefix() {
        let formulas: Vec<Formula> = tiny_space().iter().take(500).collect();
        let set: std::collections::BTreeSet<String> =
            formulas.iter().map(|f| f.to_string()).collect();
        assert_eq!(set.len(), formulas.len());
    }

    #[test]
    fn enumeration_reaches_quantified_formulas() {
        let found = tiny_space()
            .iter()
            .take(5000)
            .any(|f| f.to_string() == "exists x. R(x)");
        assert!(found);
    }

    #[test]
    fn enumeration_reaches_boolean_combinations() {
        let target = "R(x) & x = 0";
        let found = tiny_space()
            .iter()
            .take(5000)
            .any(|f| f.to_string() == target);
        assert!(found);
    }

    #[test]
    fn unary_functions_appear_in_terms() {
        let space = FormulaSpace {
            predicates: vec![],
            constants: vec![],
            variables: vec!["x".to_string()],
            unary_functions: vec!["w".into()],
            with_equality: true,
        };
        let atoms = space.atoms();
        assert!(atoms
            .iter()
            .any(|f| matches!(f, Formula::Eq(Term::App(n, _), _) if n == "w")));
    }

    #[test]
    fn empty_space_yields_nothing() {
        let space = FormulaSpace {
            predicates: vec![],
            constants: vec![],
            variables: vec![],
            unary_functions: vec![],
            with_equality: false,
        };
        assert_eq!(space.iter().count(), 0);
    }
}
