//! Core safety notions.
//!
//! "A relational query is called *finite*, or sometimes *safe*, iff it
//! yields a finite answer in every database state." The set of finite
//! queries is undecidable for every infinite domain (Di Paola, Vardi,
//! Ailamazian et al.), so implementations deal in *verdicts* produced by
//! syntactic tests, domain-specific decision procedures, or bounded
//! semi-decision — never in a universal finiteness decider.

use fq_logic::{Formula, Term};
use fq_turing::{encode_machine, Machine};

/// What an analysis concluded about a query's answer in a state (or in
/// all states, for the syntactic checks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyVerdict {
    /// The answer is finite; when known, its exact size.
    Finite(Option<usize>),
    /// The answer is provably infinite.
    Infinite,
    /// The analysis exhausted its budget without an answer — the honest
    /// outcome when the underlying problem is undecidable (Theorem 3.3).
    Unknown { budget_spent: usize },
}

impl SafetyVerdict {
    /// Whether this verdict asserts finiteness.
    pub fn is_finite(&self) -> bool {
        matches!(self, SafetyVerdict::Finite(_))
    }
}

/// The Theorem 3.1 *totality query* of a machine: `M(x) := P(enc(M), c, x)`
/// over the scheme with the single constant `c`.
///
/// "Observe that the formula M(x) is finite iff M is total": in a state
/// assigning word `w` to `c`, the answers are exactly the traces of `M`
/// in `w` — finitely many iff `M` halts on `w`.
pub fn totality_query(machine: &Machine) -> Formula {
    Formula::pred(
        "P",
        vec![
            Term::Str(encode_machine(machine)),
            Term::named("c"),
            Term::var("x"),
        ],
    )
}

/// The same query with the scheme constant replaced by a fresh variable —
/// the paper's `M(x)[z/c]` step used inside the Theorem 3.1 sentence.
pub fn totality_query_open(machine: &Machine, z: &str) -> Formula {
    fq_logic::substitute_const(&totality_query(machine), "c", &Term::var(z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_turing::builders;

    #[test]
    fn totality_query_shape() {
        let m = builders::halter();
        let q = totality_query(&m);
        assert_eq!(q.free_vars().into_iter().collect::<Vec<_>>(), vec!["x"]);
        assert!(q.named_constants().contains("c"));
    }

    #[test]
    fn open_variant_replaces_constant() {
        let m = builders::halter();
        let q = totality_query_open(&m, "z");
        let fv = q.free_vars();
        assert!(fv.contains("x") && fv.contains("z"));
        assert!(q.named_constants().is_empty());
    }

    #[test]
    fn verdict_helpers() {
        assert!(SafetyVerdict::Finite(Some(3)).is_finite());
        assert!(SafetyVerdict::Finite(None).is_finite());
        assert!(!SafetyVerdict::Infinite.is_finite());
        assert!(!SafetyVerdict::Unknown { budget_spent: 10 }.is_finite());
    }
}
