//! Relative safety: given a query **and a state**, is the answer finite?
//!
//! "Although the formula that you use may be infinite, in a given state
//! you may be lucky and the answer may be finite." (Section 1.3.)
//!
//! Positive results implemented here:
//!
//! * the equality-only domain — the fresh-element test ("it suffices to
//!   fix an arbitrary element not in the active domain and to check
//!   whether any tuple that only includes this element and active domain
//!   elements satisfies the formula");
//! * **Theorem 2.5** — any decidable extension of ⟨ℕ, <⟩: "in a given
//!   state, a formula yields a finite answer iff it is equivalent to its
//!   finitization", decided by Cooper's procedure after the Section 1.1
//!   translation;
//! * **Theorem 2.6** — ⟨ℕ, ′⟩: quantifier-eliminate the translated
//!   formula and decide finiteness of the quantifier-free residue.
//!
//! And the negative one:
//!
//! * **Theorem 3.3** — over **T**, relative safety is *undecidable*:
//!   [`halting_instance`] builds, for any machine and word, a
//!   (query, state) pair whose relative safety is exactly the halting of
//!   the machine on the word; [`relative_safety_traces`] is therefore
//!   only a *semi-decision* with an explicit budget.

use crate::finitize::finitize_wrt;
use crate::safety::{totality_query, SafetyVerdict};
use fq_domains::{DecidableTheory, DomainError, NatSucc, Presburger};
use fq_logic::Formula;
use fq_relational::active_eval::{solutions_over, NoOps};
use fq_relational::{translate_to_domain_formula, Schema, State, Value};
use fq_turing::trace::{count_traces, TraceCount};
use fq_turing::Machine;

/// Relative safety over the pure-equality domain (Section 2 opening).
///
/// Finite iff no answer tuple contains an element outside the active
/// domain; by symmetry one fresh element suffices.
pub fn relative_safety_eq(
    state: &State,
    query: &Formula,
    vars: &[String],
) -> Result<bool, DomainError> {
    let mut universe: Vec<Value> = state.query_active_domain(query).into_iter().collect();
    let fresh = Value::Nat(
        universe
            .iter()
            .filter_map(|v| match v {
                Value::Nat(n) => Some(*n),
                _ => None,
            })
            .max()
            .map_or(0, |m| m + 1),
    );
    universe.push(fresh.clone());
    let answers =
        solutions_over(state, &NoOps, query, vars, &universe).map_err(DomainError::Logic)?;
    Ok(!answers.iter().any(|t| t.contains(&fresh)))
}

/// Theorem 2.5: relative safety over ⟨ℕ, <⟩ (and its Presburger
/// extension): finite in the state iff equivalent to the finitization.
pub fn relative_safety_nat(
    state: &State,
    query: &Formula,
    vars: &[String],
) -> Result<bool, DomainError> {
    let phi = translate_to_domain_formula(query, state);
    let fin = finitize_wrt(&phi, vars);
    Presburger.equivalent(&phi, &fin)
}

/// The Section 2.1 variant for ⟨ℤ, <⟩: finite in the state iff equivalent
/// to the **two-sided** finitization ("integers with < can be handled
/// similarly after a minor modification of the finitization procedure").
pub fn relative_safety_int(
    state: &State,
    query: &Formula,
    vars: &[String],
) -> Result<bool, DomainError> {
    let _ = vars; // the two-sided transform derives the tuple itself
    let phi = translate_to_domain_formula(query, state);
    let fin = crate::finitize::finitize_two_sided(&phi);
    fq_domains::IntOrder.equivalent(&phi, &fin)
}

/// Relative safety over the length-lex word domain (the Section 2.2
/// closing remark): decidable by transporting the query through the
/// order isomorphism with ⟨ℕ, <⟩ and applying the Theorem 2.5 criterion.
pub fn relative_safety_words(
    state: &State,
    query: &Formula,
    vars: &[String],
) -> Result<bool, DomainError> {
    let phi = translate_to_domain_formula(query, state);
    let transported = fq_domains::WordsLlex.translate(&phi)?;
    let fin = finitize_wrt(&transported, vars);
    Presburger.equivalent(&transported, &fin)
}

/// Theorem 2.6: relative safety over ⟨ℕ, ′⟩ via quantifier elimination.
pub fn relative_safety_succ(
    state: &State,
    query: &Formula,
    vars: &[String],
) -> Result<bool, DomainError> {
    let phi = translate_to_domain_formula(query, state);
    let qf = NatSucc.quantifier_eliminate(&phi)?;
    NatSucc.solution_set_finite(&qf, vars)
}

/// The Theorem 3.3 reduction: a (query, state) pair over **T** whose
/// relative safety equals `machine` halting on `word`.
///
/// "M(x) is finite in the state c iff M stops starting from the value of
/// c. However, it is undecidable to determine whether a Turing machine
/// stops on an input."
pub fn halting_instance(machine: &Machine, word: &str) -> (Formula, State) {
    let schema = Schema::new().with_constant("c");
    let state = State::new(schema).with_constant("c", word);
    (totality_query(machine), state)
}

/// Semi-decide relative safety over **T** for totality-shaped instances
/// by bounded simulation; `Unknown` after `budget` steps — the honest
/// outcome Theorem 3.3 forces.
pub fn relative_safety_traces(machine: &Machine, word: &str, budget: usize) -> SafetyVerdict {
    match count_traces(machine, word, budget) {
        TraceCount::Exactly(n) => SafetyVerdict::Finite(Some(n)),
        TraceCount::AtLeast(_) => SafetyVerdict::Unknown {
            budget_spent: budget,
        },
    }
}

/// Semi-decide relative safety over **T** for an **arbitrary**
/// single-variable query via the Theorem A.3 decision procedure.
///
/// The answer set is finite with exactly `n` elements iff the sentence
/// "there exist `n + 1` pairwise-distinct answers" is false while the
/// `n`-version is true — and each such sentence is *decidable*
/// (Corollary A.4). Finiteness over **T** is therefore semi-decidable:
/// this function halts with the exact count whenever the answer is
/// finite with at most `max_count` elements, and reports `Unknown`
/// otherwise. Theorem 3.3 says no bound on `max_count` can ever make it
/// a full decision procedure.
pub fn certify_finite_traces_via_qe(
    query: &Formula,
    state: &State,
    var: &str,
    max_count: usize,
) -> Result<SafetyVerdict, DomainError> {
    use fq_domains::TraceDomain;
    let phi = translate_to_domain_formula(query, state);
    for n in 0..=max_count {
        // ∃x₀ … x_n (pairwise ≠ ∧ ⋀ φ(xᵢ)): at least n + 1 answers.
        let names: Vec<String> = (0..=n).map(|i| format!("_cq{i}")).collect();
        let mut parts: Vec<Formula> = names
            .iter()
            .map(|x| fq_logic::substitute(&phi, var, &fq_logic::Term::var(x.clone())))
            .collect();
        for i in 0..names.len() {
            for j in i + 1..names.len() {
                parts.push(Formula::neq(
                    fq_logic::Term::var(names[i].clone()),
                    fq_logic::Term::var(names[j].clone()),
                ));
            }
        }
        let sentence = Formula::exists_many(names, Formula::and(parts));
        if !TraceDomain.decide(&sentence)? {
            return Ok(SafetyVerdict::Finite(Some(n)));
        }
    }
    Ok(SafetyVerdict::Unknown {
        budget_spent: max_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;
    use fq_turing::builders;

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
    }

    fn vars(vs: &[&str]) -> Vec<String> {
        vs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn eq_domain_m_query_is_finite() {
        let q = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
        assert!(relative_safety_eq(&fathers(), &q, &vars(&["x"])).unwrap());
    }

    #[test]
    fn eq_domain_negation_is_infinite() {
        let q = parse_formula("!F(x, y)").unwrap();
        assert!(!relative_safety_eq(&fathers(), &q, &vars(&["x", "y"])).unwrap());
    }

    #[test]
    fn eq_domain_papers_conditional_example() {
        // M(x) ∨ G(x, z) is infinite exactly when someone has ≥ 2 sons
        // (footnote 4 of the paper).
        let q = parse_formula(
            "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))",
        )
        .unwrap();
        // In the two-sons state: infinite.
        assert!(!relative_safety_eq(&fathers(), &q, &vars(&["x", "z"])).unwrap());
        // In a state where nobody has two sons: finite.
        let single = State::new(Schema::new().with_relation("F", 2))
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)]);
        assert!(relative_safety_eq(&single, &q, &vars(&["x", "z"])).unwrap());
    }

    #[test]
    fn theorem_2_5_on_ordered_naturals() {
        // x < every stored value: finite (bounded).
        let bounded = parse_formula("forall y. (exists p. F(y, p)) -> x < y").unwrap();
        assert!(relative_safety_nat(&fathers(), &bounded, &vars(&["x"])).unwrap());
        // x > every stored value: infinite.
        let unbounded = parse_formula("forall y. (exists p. F(y, p)) -> x > y").unwrap();
        assert!(!relative_safety_nat(&fathers(), &unbounded, &vars(&["x"])).unwrap());
    }

    #[test]
    fn theorem_2_5_depends_on_the_state() {
        // ¬F(x, x) ∧ x < 3 is finite in every state; ¬F(x, x) alone is not.
        let q1 = parse_formula("!F(x, x) & x < 3").unwrap();
        assert!(relative_safety_nat(&fathers(), &q1, &vars(&["x"])).unwrap());
        let q2 = parse_formula("!F(x, x)").unwrap();
        assert!(!relative_safety_nat(&fathers(), &q2, &vars(&["x"])).unwrap());
    }

    #[test]
    fn words_relative_safety() {
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema).with_tuple("R", vec![Value::Str("1&1".into())]);
        // Words strictly below a stored word: finite (the order is iso ℕ).
        let below = parse_formula("exists y. R(y) & llex(x, y)").unwrap();
        assert!(relative_safety_words(&state, &below, &vars(&["x"])).unwrap());
        // Words above it: infinite.
        let above = parse_formula("exists y. R(y) & llex(y, x)").unwrap();
        assert!(!relative_safety_words(&state, &above, &vars(&["x"])).unwrap());
    }

    #[test]
    fn int_order_relative_safety() {
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema).with_tuple("R", vec![Value::Nat(5)]);
        // Between the stored value and its negation: finite over ℤ.
        let band = parse_formula("exists y. R(y) & 0 - y < x & x < y").unwrap();
        assert!(relative_safety_int(&state, &band, &vars(&["x"])).unwrap());
        // Below the stored value: infinite over ℤ (but finite over ℕ!).
        let below = parse_formula("exists y. R(y) & x < y").unwrap();
        assert!(!relative_safety_int(&state, &below, &vars(&["x"])).unwrap());
        assert!(relative_safety_nat(&state, &below, &vars(&["x"])).unwrap());
    }

    #[test]
    fn theorem_2_6_on_successor_naturals() {
        let schema = Schema::new().with_relation("R", 1);
        let state = State::new(schema).with_tuple("R", vec![Value::Nat(5)]);
        // Successor of a stored element: finite.
        let fin = parse_formula("exists y. R(y) & x = y'").unwrap();
        assert!(relative_safety_succ(&state, &fin, &vars(&["x"])).unwrap());
        // Different from the stored element: infinite.
        let inf = parse_formula("exists y. R(y) & x != y").unwrap();
        assert!(!relative_safety_succ(&state, &inf, &vars(&["x"])).unwrap());
    }

    #[test]
    fn theorem_3_3_halting_direction() {
        // Halting machine ⟹ verdict Finite with the trace count.
        let m = builders::scan_right_halt_on_blank();
        assert_eq!(
            relative_safety_traces(&m, "111", 1000),
            SafetyVerdict::Finite(Some(4))
        );
    }

    #[test]
    fn theorem_3_3_divergence_direction() {
        // Non-halting machine ⟹ the semi-decision cannot answer.
        let m = builders::looper();
        assert_eq!(
            relative_safety_traces(&m, "1", 1000),
            SafetyVerdict::Unknown { budget_spent: 1000 }
        );
    }

    #[test]
    fn qe_based_finiteness_matches_simulation() {
        // For totality queries the QE-based certificate must agree with
        // the bounded-simulation count.
        let m = builders::scan_right_halt_on_blank();
        let (query, state) = halting_instance(&m, "11");
        let bound = fq_logic::bind_constants(&query, &["c".to_string()].into());
        let verdict = certify_finite_traces_via_qe(&bound, &state, "x", 4).unwrap();
        assert_eq!(verdict, SafetyVerdict::Finite(Some(3)));
    }

    #[test]
    fn qe_based_finiteness_reports_unknown_for_divergent() {
        let m = builders::looper();
        let (query, state) = halting_instance(&m, "1");
        let bound = fq_logic::bind_constants(&query, &["c".to_string()].into());
        let verdict = certify_finite_traces_via_qe(&bound, &state, "x", 3).unwrap();
        assert_eq!(verdict, SafetyVerdict::Unknown { budget_spent: 3 });
    }

    #[test]
    fn qe_based_finiteness_on_non_totality_queries() {
        // A sort query: "x is a trace of the halter with word 1" — the
        // halter has exactly one trace there.
        let schema = Schema::new();
        let state = State::new(schema);
        let enc = fq_turing::encode_machine(&builders::halter());
        let q = parse_formula(&format!("P(\"{enc}\", \"1\", x)")).unwrap();
        let verdict = certify_finite_traces_via_qe(&q, &state, "x", 3).unwrap();
        assert_eq!(verdict, SafetyVerdict::Finite(Some(1)));
        // "x is any word" is infinite.
        let inf = parse_formula("W(x)").unwrap();
        let verdict = certify_finite_traces_via_qe(&inf, &state, "x", 2).unwrap();
        assert_eq!(verdict, SafetyVerdict::Unknown { budget_spent: 2 });
    }

    #[test]
    fn halting_instance_answers_match_traces() {
        // The instance's actual answers in the state are the traces.
        let m = builders::scan_right_halt_on_blank();
        let (query, state) = halting_instance(&m, "11");
        let bound = fq_logic::bind_constants(&query, &["c".to_string()].into());
        let out = crate::answer::answer_query(
            &fq_domains::TraceDomain,
            &state,
            &bound,
            &vars(&["x"]),
            100_000,
        )
        .unwrap();
        assert!(out.is_complete());
        assert_eq!(out.found().len(), 3);
    }
}
