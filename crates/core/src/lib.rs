//! # fq-core — the safety theory of Stolboushkin & Taitslin
//!
//! This crate implements the paper's contribution proper, on top of the
//! logic kernel (`fq-logic`), the Turing substrate (`fq-turing`), the
//! decidable domains (`fq-domains`), and the relational layer
//! (`fq-relational`):
//!
//! * [`answer`] — the Section 1.1 algorithm: over any recursive domain
//!   with a decidable theory, *finite* queries are effectively answerable
//!   by enumerate-and-ask;
//! * [`mod@finitize`] — the Theorem 2.2 finitization transform, a recursive
//!   syntax for finite queries over any extension of ⟨ℕ, <⟩;
//! * [`syntax`] — effective-syntax enumerators: active-domain syntax for
//!   the equality domain, finitization syntax for ⟨ℕ, <⟩/Presburger, the
//!   extended-active-domain syntax of Theorem 2.7 for ⟨ℕ, ′⟩, and the
//!   Corollary 2.4 order extension (with its Corollary 3.2 caveat);
//! * [`relative`] — relative-safety deciders: the fresh-element test for
//!   equality (Section 2), Theorem 2.5 for decidable extensions of
//!   ⟨ℕ, <⟩, Theorem 2.6 for ⟨ℕ, ′⟩, and the Theorem 3.3 *reduction from
//!   the halting problem* showing relative safety undecidable over **T**;
//! * [`negative`] — the Theorem 3.1 reduction: any effective syntax for
//!   the finite queries of **T** yields a recursive enumeration of the
//!   total Turing machines; running it on concrete candidate syntaxes
//!   produces explicit total machines the candidate misses;
//! * [`enumerate`] — exhaustive enumeration of formulas (Theorem 3.1
//!   requires "a recursive enumeration φ₁(x), φ₂(x), …");
//! * [`finrep`] — the Section 1.2 alternative: finitely-representable
//!   (constraint) relations over Presburger arithmetic, with membership,
//!   algebraic operations, projection via Cooper, and a finiteness test.

//!
//! ```
//! use fq_core::finitize;
//! use fq_domains::{DecidableTheory, Presburger};
//! use fq_logic::parse_formula;
//!
//! // Theorem 2.2 in one breath: a formula is finite over ⟨N,<,+⟩ iff it
//! // is equivalent to its finitization.
//! let finite = parse_formula("x < 7")?;
//! assert!(Presburger.equivalent(&finite, &finitize(&finite))?);
//! let infinite = parse_formula("x > 7")?;
//! assert!(!Presburger.equivalent(&infinite, &finitize(&infinite))?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod answer;
pub mod enumerate;
pub mod finitize;
pub mod finrep;
pub mod negative;
pub mod relative;
pub mod safety;
pub mod syntax;

pub use answer::{answer_query, answer_query_with, AnswerOutcome};
pub use finitize::finitize;
pub use safety::{totality_query, SafetyVerdict};
