//! The Theorem 2.2 finitization transform.
//!
//! For any extension of ⟨ℕ, <⟩, the *finitization* of `φ(x₁, …, x_k)` is
//!
//! ```text
//! φ(x̄) ∧ (∃m)(∀x̄)(φ(x̄) → ⋀ᵢ xᵢ < m)
//! ```
//!
//! "It is easy to see that, first, the finitization of any formula is
//! finite, and, second, the finitization of a finite formula is
//! equivalent to this finite formula. Therefore, the set of the
//! finitizations of all formulas is a recursive syntax for finite
//! queries."

use fq_logic::{fresh_var, Formula, Term};

/// Compute the finitization of a formula with respect to its free
/// variables. Sentences are returned unchanged (their answer is `{()}` or
/// `∅`, always finite).
pub fn finitize(phi: &Formula) -> Formula {
    let free: Vec<String> = phi.free_vars().into_iter().collect();
    finitize_wrt(phi, &free)
}

/// Finitization with an explicit answer-variable tuple (useful when the
/// answer relation projects only some of the free variables).
pub fn finitize_wrt(phi: &Formula, vars: &[String]) -> Formula {
    if vars.is_empty() {
        return phi.clone();
    }
    let taken = phi.all_vars();
    let m = fresh_var("m", &taken);
    // (∃m)(∀x̄)(φ → ⋀ xᵢ < m)
    let bound = Formula::and(
        vars.iter()
            .map(|x| Formula::lt(Term::var(x.clone()), Term::var(m.clone()))),
    );
    let guard = Formula::exists(
        m,
        Formula::forall_many(vars.to_vec(), Formula::implies(phi.clone(), bound)),
    );
    Formula::and([phi.clone(), guard])
}

/// The "minor modification of the finitization procedure" for ⟨ℤ, <⟩
/// (Section 2.1): clamp the answers from both sides,
/// `φ ∧ ∃m ∀x̄ (φ → ⋀ᵢ (−m < xᵢ ∧ xᵢ < m))`.
pub fn finitize_two_sided(phi: &Formula) -> Formula {
    let vars: Vec<String> = phi.free_vars().into_iter().collect();
    if vars.is_empty() {
        return phi.clone();
    }
    let taken = phi.all_vars();
    let m = fresh_var("m", &taken);
    let neg_m = Term::app2("-", Term::Nat(0), Term::var(m.clone()));
    let bound = Formula::and(vars.iter().flat_map(|x| {
        [
            Formula::lt(Term::var(x.clone()), Term::var(m.clone())),
            Formula::lt(neg_m.clone(), Term::var(x.clone())),
        ]
    }));
    let guard = Formula::exists(
        m,
        Formula::forall_many(vars, Formula::implies(phi.clone(), bound)),
    );
    Formula::and([phi.clone(), guard])
}

/// The Fact 2.1 observation packaged as data: over ⟨ℕ, <⟩ the
/// least-strict-upper-bound query is finite but not domain-independent.
/// Returns the (query, expected unique answer) pair for a materialized
/// active domain.
pub fn fact_2_1_witness(active: &[u64]) -> (Formula, u64) {
    let q = fq_domains::NatOrder.least_upper_witness("x", active);
    let answer = active.iter().max().map_or(0, |m| m + 1);
    (q, answer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_domains::{DecidableTheory, Presburger};
    use fq_logic::parse_formula;

    #[test]
    fn finitization_adds_the_bound_guard() {
        let phi = parse_formula("x < 5").unwrap();
        let f = finitize(&phi);
        // Shape: φ ∧ ∃m ∀x (φ → x < m).
        assert_eq!(f.free_vars(), phi.free_vars());
        assert!(f.quantifier_depth() >= 2);
    }

    #[test]
    fn finitization_of_finite_formula_is_equivalent() {
        // x < 5 is finite; its finitization must be equivalent (Cooper).
        let phi = parse_formula("x < 5").unwrap();
        assert!(Presburger.equivalent(&phi, &finitize(&phi)).unwrap());
    }

    #[test]
    fn finitization_of_infinite_formula_is_not_equivalent() {
        // x > 5 is infinite; its finitization is empty, not equivalent.
        let phi = parse_formula("x > 5").unwrap();
        let f = finitize(&phi);
        assert!(!Presburger.equivalent(&phi, &f).unwrap());
        // The finitization of x > 5 is actually unsatisfiable.
        let nonempty = Formula::exists("x", f);
        assert!(!Presburger.decide(&nonempty).unwrap());
    }

    #[test]
    fn finitization_is_always_finite() {
        // For any φ(x), the finitization's answers are bounded: check the
        // Presburger sentence ∃m ∀x (fin(φ) → x < m) for several φ.
        for s in ["x > 5", "x < 5", "x = 3 | x > 10", "div(2, x, 0)"] {
            let phi = parse_formula(s).unwrap();
            let f = finitize(&phi);
            let bounded = Formula::exists(
                "mb",
                Formula::forall(
                    "x",
                    Formula::implies(f, Formula::lt(Term::var("x"), Term::var("mb"))),
                ),
            );
            assert!(
                Presburger.decide(&bounded).unwrap(),
                "finitization of `{s}` is unbounded"
            );
        }
    }

    #[test]
    fn two_variable_finitization() {
        // x + y = 5 has 6 solutions over ℕ — already finite.
        let phi = parse_formula("x + y = 5").unwrap();
        assert!(Presburger.equivalent(&phi, &finitize(&phi)).unwrap());
        // x = y is infinite.
        let inf = parse_formula("x = y").unwrap();
        assert!(!Presburger.equivalent(&inf, &finitize(&inf)).unwrap());
    }

    #[test]
    fn sentences_are_untouched() {
        let phi = parse_formula("exists x. x = 0").unwrap();
        assert_eq!(finitize(&phi), phi);
    }

    #[test]
    fn fresh_bound_variable_avoids_capture() {
        let phi = parse_formula("x < m").unwrap();
        let f = finitize(&phi);
        // Both x and m are free in φ; the bound variable must be fresh.
        assert_eq!(f.free_vars(), phi.free_vars());
    }

    #[test]
    fn two_sided_finitization_over_integers() {
        use fq_domains::IntOrder;
        // −3 < x < 3 is finite over ℤ; x < 3 alone is not (unbounded below).
        let band = parse_formula("0 - 3 < x & x < 3").unwrap();
        assert!(IntOrder
            .equivalent(&band, &finitize_two_sided(&band))
            .unwrap());
        let half = parse_formula("x < 3").unwrap();
        assert!(!IntOrder
            .equivalent(&half, &finitize_two_sided(&half))
            .unwrap());
        // Why the modification is needed: over ℤ the ℕ-style one-sided
        // guard of `x < 3` is satisfied (m = 3 bounds it above), so the
        // one-sided "finitization" stays equivalent to the INFINITE
        // x < 3 — it is not a finitization at all over ℤ.
        let one_sided = finitize(&half);
        assert!(IntOrder.equivalent(&half, &one_sided).unwrap());
        // The two-sided transform of the same formula is genuinely
        // finite: its own two-sided finitization is equivalent to it.
        let two = finitize_two_sided(&half);
        assert!(IntOrder
            .equivalent(&two, &finitize_two_sided(&two))
            .unwrap());
    }

    #[test]
    fn fact_2_1_witness_answer() {
        let (q, ans) = fact_2_1_witness(&[1, 4]);
        assert_eq!(ans, 5);
        let at = fq_logic::substitute(&q, "x", &Term::Nat(ans));
        assert!(fq_domains::NatOrder.decide(&at).unwrap());
    }

    #[test]
    fn fact_2_1_witness_is_finite_but_not_domain_independent() {
        // Finite: the finitization is equivalent.
        let (q, _) = fact_2_1_witness(&[1, 4]);
        assert!(Presburger.equivalent(&q, &finitize(&q)).unwrap());
        // Not domain-independent: the answer (5) lies outside the
        // materialized active domain {1, 4}.
        let (_, ans) = fact_2_1_witness(&[1, 4]);
        assert!(![1u64, 4].contains(&ans));
    }
}
