//! The Theorem 3.1 reduction: effective syntax ⟹ enumeration of the
//! total Turing machines.
//!
//! The proof of Theorem 3.1: suppose φ₁(x), φ₂(x), … is a recursive
//! enumeration of finite formulas covering every finite query. "Given a
//! machine M_k and a formula φ_r(x), consider the formula
//!
//! ```text
//! (∀z)(∀x)( M_k(x)[z/c] ↔ φ_r(x)[z/c] )
//! ```
//!
//! … because \[of\] the decidability of the theory, we can check whether it
//! is true or not. Now if it happens to be true, we know that M_k is a
//! total machine … Hence, by continuously analyzing all pairs of k and r,
//! we can establish a recursive enumeration of all total Turing machines.
//! But this is known to be impossible."
//!
//! This module implements the reduction *literally*: a
//! [`CandidateSyntax`] plugs in, [`certify_total`] runs the displayed
//! sentence through the Theorem A.3 decision procedure, and
//! [`TotalityEnumerator`] dovetails over pairs. Running it against a
//! concrete candidate syntax exhibits the failure the theorem predicts:
//! the candidate certifies only machines of a special shape, and an
//! explicit total machine outside that shape (its totality query *is*
//! finite) is never covered — see [`refute_candidate_syntax`].

use crate::safety::totality_query_open;
use fq_domains::{DecidableTheory, DomainError, TraceDomain};
use fq_engine::Engine;
use fq_logic::{substitute_const, Formula, Term};
use fq_turing::{encode_machine, Machine, MachineEnumerator};
use std::collections::VecDeque;

/// A candidate effective syntax for the finite queries of **T**: an
/// enumerable family of formulas with free variable `x` over the scheme
/// with the single constant `c`, every member of which is finite.
pub trait CandidateSyntax {
    /// Human-readable name for reports.
    fn name(&self) -> String;

    /// The `r`-th candidate formula (0-based); `None` when the family is
    /// finite and exhausted.
    fn candidate(&self, r: usize) -> Option<Formula>;
}

/// The natural candidate: `Φ_{k,j}(x) := P(M_k, c, x) ∧ E_j(M_k, c)`,
/// dovetailed over the machine enumeration and `j ≥ 1`.
///
/// Every member is finite: in a state where `E_j(M_k, c)` holds, `M_k`
/// halts on the state's word and `P` has exactly `j` answers; otherwise
/// the answer is empty. But the family only captures totality queries of
/// machines whose running time is *the same on every input* — a total
/// machine with input-dependent running time (e.g. the right-scanner) is
/// missed, which is the concrete face of Theorem 3.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactRuntimeSyntax;

impl ExactRuntimeSyntax {
    /// The candidate naming this very machine with `j = 1` — used by the
    /// benches to time one certification-sentence decision without
    /// dovetailing through the enumeration.
    pub fn default_candidate_for(machine: &Machine) -> Formula {
        let enc = encode_machine(machine);
        Formula::and([
            Formula::pred(
                "P",
                vec![Term::Str(enc.clone()), Term::named("c"), Term::var("x")],
            ),
            Formula::pred("E", vec![Term::Nat(1), Term::Str(enc), Term::named("c")]),
        ])
    }
}

impl CandidateSyntax for ExactRuntimeSyntax {
    fn name(&self) -> String {
        "Φ_{k,j}(x) = P(M_k, c, x) ∧ E_j(M_k, c)".to_string()
    }

    fn candidate(&self, r: usize) -> Option<Formula> {
        let (k, j) = cantor_unpair(r);
        let machine = MachineEnumerator::new().nth(k)?;
        let enc = encode_machine(&machine);
        Some(Formula::and([
            Formula::pred(
                "P",
                vec![Term::Str(enc.clone()), Term::named("c"), Term::var("x")],
            ),
            Formula::pred(
                "E",
                vec![Term::Nat(j as u64 + 1), Term::Str(enc), Term::named("c")],
            ),
        ]))
    }
}

/// A second, even more naive candidate: the *finite-list* syntax
/// `Ψ_S(x) := ⋁_{t ∈ S} x = t` over explicit finite sets of domain
/// strings. Every member is trivially finite (its answer is a subset of
/// `S` in every state), but it captures only queries whose answer is the
/// same finite set in **every** state — so it certifies *no* machine at
/// all: even the halter's totality query has state-dependent answers
/// (the traces embed the state's word). Contrast with
/// [`ExactRuntimeSyntax`], which certifies exactly the constant-runtime
/// machines: different candidate syntaxes fail in different ways, but by
/// Theorem 3.1 they all must fail.
#[derive(Clone, Copy, Debug, Default)]
pub struct FiniteListSyntax;

impl CandidateSyntax for FiniteListSyntax {
    fn name(&self) -> String {
        "Ψ_S(x) = ⋁_{t ∈ S} x = t (explicit finite sets)".to_string()
    }

    fn candidate(&self, r: usize) -> Option<Formula> {
        // The r-th finite set: the binary expansion of r + 1 selects
        // strings from the canonical enumeration.
        let selector = r + 1;
        let strings = fq_domains::traces::enumerate_strings(usize::BITS as usize);
        let disjuncts: Vec<Formula> = (0..usize::BITS as usize)
            .filter(|bit| selector & (1 << bit) != 0)
            .map(|bit| Formula::eq(Term::var("x"), Term::Str(strings[bit].clone())))
            .collect();
        Some(Formula::or(disjuncts))
    }
}

/// Inverse of the Cantor pairing: `r ↦ (k, j)`.
pub fn cantor_unpair(r: usize) -> (usize, usize) {
    let w = ((((8 * r + 1) as f64).sqrt() as usize).saturating_sub(1)) / 2;
    let w = if (w + 1) * (w + 2) / 2 <= r { w + 1 } else { w };
    let t = w * (w + 1) / 2;
    let j = r - t;
    let k = w - j;
    (k, j)
}

/// The Theorem 3.1 sentence for a machine and a candidate formula:
/// `∀z∀x (M(x)[z/c] ↔ φ(x)[z/c])`.
pub fn certification_sentence(machine: &Machine, candidate: &Formula) -> Formula {
    let m_open = totality_query_open(machine, "z");
    let phi_open = substitute_const(candidate, "c", &Term::var("z"));
    Formula::forall_many(["z", "x"], Formula::iff(m_open, phi_open))
}

/// Try to certify a machine total via the first `max_candidates` members
/// of a candidate syntax. Returns the index and formula of the matching
/// candidate. Certification is *sound*: a match proves the totality
/// query finite in every state, hence the machine total.
pub fn certify_total<S: CandidateSyntax>(
    machine: &Machine,
    syntax: &S,
    max_candidates: usize,
) -> Result<Option<(usize, Formula)>, DomainError> {
    certify_total_with(machine, syntax, max_candidates, &Engine::sequential())
}

/// [`certify_total`] through a shared [`Engine`]: candidates are decided
/// in batches of one per worker, and each batch is scanned in candidate
/// order, so the returned certificate is always the *lowest-index* match
/// — identical to the sequential scan.
pub fn certify_total_with<S: CandidateSyntax>(
    machine: &Machine,
    syntax: &S,
    max_candidates: usize,
    engine: &Engine,
) -> Result<Option<(usize, Formula)>, DomainError> {
    let batch = engine.threads().max(1);
    let mut r = 0;
    while r < max_candidates {
        let mut candidates: Vec<(usize, Formula)> = Vec::with_capacity(batch);
        let mut exhausted = false;
        while candidates.len() < batch && r < max_candidates {
            match syntax.candidate(r) {
                Some(phi) => candidates.push((r, phi)),
                None => {
                    exhausted = true;
                    break;
                }
            }
            r += 1;
        }
        let verdicts = engine.parallel_map(&candidates, |(_, phi)| {
            let sentence = certification_sentence(machine, phi);
            TraceDomain.decide_with(&sentence, engine)
        });
        for ((index, phi), verdict) in candidates.iter().zip(verdicts) {
            if verdict? {
                return Ok(Some((*index, phi.clone())));
            }
        }
        if exhausted {
            break;
        }
    }
    Ok(None)
}

/// The enumeration of total machines induced by a candidate syntax:
/// dovetail over (machine k, candidate r) pairs and yield each machine
/// whose certification sentence is true.
pub struct TotalityEnumerator<S: CandidateSyntax> {
    syntax: S,
    pair: usize,
    max_pairs: usize,
    engine: Engine,
    ready: VecDeque<(Machine, usize)>,
}

impl<S: CandidateSyntax> TotalityEnumerator<S> {
    /// Enumerate certified machines among the first `max_pairs`
    /// (machine, candidate) pairs.
    pub fn new(syntax: S, max_pairs: usize) -> Self {
        Self::with_engine(syntax, max_pairs, Engine::sequential())
    }

    /// [`TotalityEnumerator::new`] through a shared [`Engine`]: the
    /// dovetail decides one batch of pairs per worker at a time and
    /// yields certified machines in pair order, so the stream is
    /// identical to the sequential enumeration.
    pub fn with_engine(syntax: S, max_pairs: usize, engine: Engine) -> Self {
        TotalityEnumerator {
            syntax,
            pair: 0,
            max_pairs,
            engine,
            ready: VecDeque::new(),
        }
    }

    fn refill(&mut self) {
        let batch = self.engine.threads().max(1);
        while self.ready.is_empty() && self.pair < self.max_pairs {
            let mut pending: Vec<(usize, Machine, Formula)> = Vec::with_capacity(batch);
            while pending.len() < batch && self.pair < self.max_pairs {
                let r = self.pair;
                self.pair += 1;
                let (k, c) = cantor_unpair(r);
                let Some(machine) = MachineEnumerator::new().nth(k) else {
                    continue;
                };
                let Some(phi) = self.syntax.candidate(c) else {
                    continue;
                };
                pending.push((r, machine, phi));
            }
            let engine = &self.engine;
            let verdicts = engine.parallel_map(&pending, |(_, machine, phi)| {
                let sentence = certification_sentence(machine, phi);
                TraceDomain.decide_with(&sentence, engine).unwrap_or(false)
            });
            for ((r, machine, _), certified) in pending.into_iter().zip(verdicts) {
                if certified {
                    self.ready.push_back((machine, r));
                }
            }
        }
    }
}

impl<S: CandidateSyntax> Iterator for TotalityEnumerator<S> {
    type Item = (Machine, usize);

    fn next(&mut self) -> Option<(Machine, usize)> {
        if self.ready.is_empty() {
            self.refill();
        }
        self.ready.pop_front()
    }
}

/// A bounded refutation of a candidate syntax: a machine whose totality
/// query is finite (the machine is total by construction) but which no
/// candidate among the first `candidates_checked` matches.
#[derive(Clone, Debug)]
pub struct SyntaxRefutation {
    pub machine: Machine,
    pub machine_str: String,
    pub candidates_checked: usize,
}

/// Search the provided family of known-total machines for one the
/// candidate syntax fails to cover within the budget.
pub fn refute_candidate_syntax<S: CandidateSyntax>(
    syntax: &S,
    total_witnesses: &[Machine],
    max_candidates: usize,
) -> Result<Option<SyntaxRefutation>, DomainError> {
    refute_candidate_syntax_with(
        syntax,
        total_witnesses,
        max_candidates,
        &Engine::sequential(),
    )
}

/// [`refute_candidate_syntax`] through a shared [`Engine`].
pub fn refute_candidate_syntax_with<S: CandidateSyntax>(
    syntax: &S,
    total_witnesses: &[Machine],
    max_candidates: usize,
    engine: &Engine,
) -> Result<Option<SyntaxRefutation>, DomainError> {
    for machine in total_witnesses {
        if certify_total_with(machine, syntax, max_candidates, engine)?.is_none() {
            return Ok(Some(SyntaxRefutation {
                machine: machine.clone(),
                machine_str: encode_machine(machine),
                candidates_checked: max_candidates,
            }));
        }
    }
    Ok(None)
}

/// A family of machines total by construction, used as refutation
/// witnesses. The right-scanner and the eraser have input-dependent
/// running time; `run_exactly` machines do not.
pub fn total_witnesses() -> Vec<Machine> {
    vec![
        fq_turing::builders::halter(),
        fq_turing::builders::run_exactly(1),
        fq_turing::builders::run_exactly(2),
        fq_turing::builders::scan_right_halt_on_blank(),
        fq_turing::builders::erase_and_halt(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_turing::builders;

    #[test]
    fn cantor_unpair_is_a_bijection_prefix() {
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..100 {
            let pair = cantor_unpair(r);
            assert!(seen.insert(pair), "duplicate {pair:?} at r={r}");
        }
        // Hits the corners.
        assert!(seen.contains(&(0, 0)));
        assert!(seen.contains(&(0, 1)));
        assert!(seen.contains(&(1, 0)));
    }

    #[test]
    fn halter_is_certified_by_its_own_candidate() {
        // The halter halts after 0 steps on every input: E_1 everywhere.
        let m = builders::halter();
        let found = certify_total(&m, &ExactRuntimeSyntax, 40).unwrap();
        let (r, phi) = found.expect("halter must be certified");
        assert!(phi.to_string().contains("E(1"));
        // And the certificate is an early candidate.
        assert!(r < 40);
    }

    #[test]
    fn run_exactly_machines_are_certified() {
        // run_exactly(1) halts after exactly 1 step everywhere: E_2. Its
        // machine index in the enumeration is larger, so allow a bigger
        // candidate budget.
        let m = builders::run_exactly(1);
        // Build the certificate directly instead of dovetailing far: the
        // candidate with this very machine and j = 2 must verify.
        let enc = encode_machine(&m);
        let phi = Formula::and([
            Formula::pred(
                "P",
                vec![Term::Str(enc.clone()), Term::named("c"), Term::var("x")],
            ),
            Formula::pred("E", vec![Term::Nat(2), Term::Str(enc), Term::named("c")]),
        ]);
        let sentence = certification_sentence(&m, &phi);
        assert!(TraceDomain.decide(&sentence).unwrap());
    }

    #[test]
    fn looper_is_never_certified() {
        // The looper is not total; no candidate may match it (soundness).
        let m = builders::looper();
        let found = certify_total(&m, &ExactRuntimeSyntax, 60).unwrap();
        assert!(found.is_none());
    }

    #[test]
    fn scanner_refutes_the_exact_runtime_syntax() {
        // The right-scanner is total but has input-dependent runtime: no
        // E_j candidate can be equivalent to its totality query.
        let m = builders::scan_right_halt_on_blank();
        let found = certify_total(&m, &ExactRuntimeSyntax, 60).unwrap();
        assert!(found.is_none(), "scanner wrongly certified: {found:?}");
        let refutation =
            refute_candidate_syntax(&ExactRuntimeSyntax, &total_witnesses(), 60).unwrap();
        assert!(refutation.is_some());
    }

    #[test]
    fn certification_sentence_shape() {
        let m = builders::halter();
        let phi = ExactRuntimeSyntax.candidate(0).unwrap();
        let s = certification_sentence(&m, &phi);
        assert!(s.is_sentence());
        assert!(s.named_constants().is_empty(), "c must be replaced by z");
    }

    #[test]
    fn totality_enumerator_yields_only_total_machines() {
        // Every machine the oracle certifies must halt on sample inputs —
        // the soundness direction of the reduction, checked empirically.
        let mut count = 0;
        for (machine, _) in TotalityEnumerator::new(ExactRuntimeSyntax, 45) {
            count += 1;
            for w in ["", "1", "11", "1&1"] {
                assert!(
                    fq_turing::exec::halts_within(&machine, w, 10_000),
                    "certified machine fails to halt on {w:?}"
                );
            }
        }
        assert!(
            count >= 1,
            "the enumerator should certify at least the halter"
        );
    }

    #[test]
    fn finite_list_syntax_certifies_nothing() {
        // Even the halter has state-dependent answers, so no explicit
        // finite set is equivalent to its totality query.
        for machine in [builders::halter(), builders::looper()] {
            assert!(
                certify_total(&machine, &FiniteListSyntax, 30)
                    .unwrap()
                    .is_none(),
                "finite-list syntax must certify nothing"
            );
        }
        // And therefore every total witness refutes it immediately.
        let refutation =
            refute_candidate_syntax(&FiniteListSyntax, &total_witnesses(), 30).unwrap();
        assert!(refutation.is_some());
    }

    #[test]
    fn parallel_certification_matches_sequential() {
        let engine = Engine::new(fq_engine::EngineConfig {
            threads: 4,
            cache_capacity: 1 << 12,
        });
        for machine in [builders::halter(), builders::looper()] {
            let seq = certify_total(&machine, &ExactRuntimeSyntax, 45).unwrap();
            let par = certify_total_with(&machine, &ExactRuntimeSyntax, 45, &engine).unwrap();
            assert_eq!(seq, par);
        }
    }

    #[test]
    fn parallel_enumerator_matches_sequential() {
        let seq: Vec<(Machine, usize)> = TotalityEnumerator::new(ExactRuntimeSyntax, 45).collect();
        let engine = Engine::new(fq_engine::EngineConfig {
            threads: 4,
            cache_capacity: 1 << 12,
        });
        let par: Vec<(Machine, usize)> =
            TotalityEnumerator::with_engine(ExactRuntimeSyntax, 45, engine).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn finite_list_candidates_are_finite_sets() {
        for r in 0..10 {
            let phi = FiniteListSyntax.candidate(r).unwrap();
            // Shape: a disjunction of equalities with string constants.
            phi.visit(&mut |f| match f {
                Formula::Or(_) | Formula::Eq(..) => {}
                Formula::Pred(..) | Formula::Not(_) | Formula::And(_) => {
                    panic!("unexpected connective in {phi}")
                }
                _ => {}
            });
        }
    }

    #[test]
    fn wrong_machine_candidate_rejected() {
        // Certifying the halter against a candidate naming the looper
        // must fail (their trace sets differ).
        let halter = builders::halter();
        let looper_enc = encode_machine(&builders::looper());
        let phi = Formula::and([
            Formula::pred(
                "P",
                vec![
                    Term::Str(looper_enc.clone()),
                    Term::named("c"),
                    Term::var("x"),
                ],
            ),
            Formula::pred(
                "E",
                vec![Term::Nat(1), Term::Str(looper_enc), Term::named("c")],
            ),
        ]);
        let sentence = certification_sentence(&halter, &phi);
        assert!(!TraceDomain.decide(&sentence).unwrap());
    }
}
