//! The Section 1.1 query-answering algorithm.
//!
//! "Consider the formula ∃x̄ F′(x̄). If it is false, then the answer is the
//! empty relation. … by checking F(a₁), F(a₂), …, one at a time, we find
//! the first a_k that makes the formula true. … Now take the formula
//! ∃x̄ (x̄ ≠ a_k ∧ F′(x̄)) … Thus, we just described an algorithm (as
//! inefficient as it is) for answering queries. Note that, at least for
//! safe queries, this algorithm always stops."
//!
//! The implementation is generic over any [`DecidableTheory`]: the state
//! is folded into the query by the Section 1.1 translation, and the
//! decision procedure is asked "is there another answer?" after each
//! tuple is found.

use fq_domains::{DecidableTheory, Domain, DomainError};
use fq_engine::Engine;
use fq_logic::{Formula, Term};
use fq_relational::{translate_to_domain_formula, State};

/// The outcome of the enumerate-and-ask algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnswerOutcome<E> {
    /// The decision procedure certified the answer complete.
    Complete(Vec<Vec<E>>),
    /// The candidate budget ran out — for an *unsafe* query in this state
    /// the loop would never stop, exactly as the paper warns.
    BudgetExhausted {
        found: Vec<Vec<E>>,
        candidates_tried: usize,
    },
}

impl<E> AnswerOutcome<E> {
    /// The tuples found so far.
    pub fn found(&self) -> &[Vec<E>] {
        match self {
            AnswerOutcome::Complete(t) | AnswerOutcome::BudgetExhausted { found: t, .. } => t,
        }
    }

    /// Whether the answer was certified complete.
    pub fn is_complete(&self) -> bool {
        matches!(self, AnswerOutcome::Complete(_))
    }
}

/// Answer `query` in `state` over `domain` by enumerate-and-ask, trying
/// at most `max_candidates` candidate tuples.
pub fn answer_query<D: DecidableTheory>(
    domain: &D,
    state: &State,
    query: &Formula,
    vars: &[String],
    max_candidates: usize,
) -> Result<AnswerOutcome<D::Elem>, DomainError> {
    // A private engine still pays off within one call: the loop restarts
    // its candidate scan after every discovered tuple, re-deciding the
    // same instantiated sentences.
    answer_query_with(
        domain,
        state,
        query,
        vars,
        max_candidates,
        &Engine::sequential(),
    )
}

/// [`answer_query`] with the decision procedure routed through `engine`:
/// each decided sentence is memoized (keyed by the domain type and the
/// sentence), so the outer loop's restarted candidate scans — and warm
/// re-executions sharing the engine — skip the quantifier eliminations
/// entirely.
pub fn answer_query_with<D: DecidableTheory>(
    domain: &D,
    state: &State,
    query: &Formula,
    vars: &[String],
    max_candidates: usize,
    engine: &Engine,
) -> Result<AnswerOutcome<D::Elem>, DomainError> {
    let decide = |sentence: &Formula| -> Result<bool, DomainError> {
        engine.cached(
            "core.answer.decide",
            (std::any::type_name::<D>(), sentence.clone()),
            || domain.decide_with(sentence, engine),
        )
    };
    let phi = translate_to_domain_formula(query, state);
    let mut found: Vec<Vec<D::Elem>> = Vec::new();
    let mut candidates_tried = 0usize;

    loop {
        // "Is there an answer different from all found so far?" — for
        // multi-variable queries the accumulated ≠-constraints make this
        // sentence exponentially hard for the quantifier eliminations
        // (each excluded tuple is a 2-literal clause), so past a small
        // number of found tuples we stop certifying and scan until the
        // budget runs out, reporting the honest `BudgetExhausted`.
        let check_feasible = vars.len() <= 1 || found.len() <= 4;
        if check_feasible {
            let another = exists_another(&phi, vars, &found, domain);
            if !decide(&another)? {
                return Ok(AnswerOutcome::Complete(found));
            }
        }
        // Scan candidate tuples — guided candidates first (a reordering
        // hint from the domain), then the canonical enumeration.
        let guided = guided_tuples(domain, &phi, vars.len());
        let mut discovered = false;
        for tuple in guided
            .into_iter()
            .chain(TupleEnumerator::new(domain, vars.len()))
        {
            if candidates_tried == max_candidates {
                return Ok(AnswerOutcome::BudgetExhausted {
                    found,
                    candidates_tried,
                });
            }
            candidates_tried += 1;
            if found.contains(&tuple) {
                continue;
            }
            let instantiated = instantiate(&phi, vars, &tuple, domain);
            if decide(&instantiated)? {
                found.push(tuple);
                discovered = true;
                break;
            }
        }
        if !discovered {
            // The enumerator is finite only through the budget; reaching
            // here means the budget ran out inside the scan.
            return Ok(AnswerOutcome::BudgetExhausted {
                found,
                candidates_tried,
            });
        }
    }
}

/// `∃x̄ (φ ∧ ⋀_t x̄ ≠ t)` closed over the answer variables.
fn exists_another<D: Domain>(
    phi: &Formula,
    vars: &[String],
    found: &[Vec<D::Elem>],
    domain: &D,
) -> Formula {
    let distinct = found.iter().map(|tuple| {
        Formula::not(Formula::and(vars.iter().zip(tuple).map(|(v, e)| {
            Formula::eq(Term::var(v.clone()), domain.elem_term(e))
        })))
    });
    Formula::exists_many(
        vars.to_vec(),
        Formula::and(std::iter::once(phi.clone()).chain(distinct)),
    )
}

/// Cartesian product of the domain's guided elements (capped at 10 000
/// tuples so a large hint set cannot stall the canonical scan).
fn guided_tuples<D: Domain>(domain: &D, phi: &Formula, k: usize) -> Vec<Vec<D::Elem>> {
    let elems = domain.guided_elements(phi);
    if elems.is_empty() || k == 0 {
        return Vec::new();
    }
    if elems.len().checked_pow(k as u32).is_none_or(|n| n > 10_000) {
        return elems.into_iter().map(|e| vec![e; k]).collect();
    }
    let mut out: Vec<Vec<D::Elem>> = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * elems.len());
        for t in &out {
            for e in &elems {
                let mut t2 = t.clone();
                t2.push(e.clone());
                next.push(t2);
            }
        }
        out = next;
    }
    out
}

fn instantiate<D: Domain>(
    phi: &Formula,
    vars: &[String],
    tuple: &[D::Elem],
    domain: &D,
) -> Formula {
    let mut f = phi.clone();
    for (v, e) in vars.iter().zip(tuple) {
        f = fq_logic::substitute(&f, v, &domain.elem_term(e));
    }
    // Any remaining free variables (not in `vars`) would make this open;
    // the caller is responsible for projecting all free variables.
    f
}

/// Enumerates k-tuples of domain elements so that every tuple eventually
/// appears: round `n` yields the tuples over the first `n` elements that
/// use the `n`-th element at least once.
struct TupleEnumerator<'a, D: Domain> {
    domain: &'a D,
    k: usize,
    n: usize,
    buffer: std::vec::IntoIter<Vec<D::Elem>>,
}

impl<'a, D: Domain> TupleEnumerator<'a, D> {
    fn new(domain: &'a D, k: usize) -> Self {
        TupleEnumerator {
            domain,
            k,
            n: 0,
            buffer: Vec::new().into_iter(),
        }
    }

    fn refill(&mut self) {
        self.n += 1;
        let elems = self.domain.enumerate(self.n);
        if elems.len() < self.n {
            // Domain exhausted (cannot happen for infinite domains).
            self.buffer = Vec::new().into_iter();
            return;
        }
        let newest = self.n - 1;
        let mut tuples = Vec::new();
        let mut indices = vec![0usize; self.k];
        loop {
            if indices.contains(&newest) || (self.k == 0 && self.n == 1) {
                tuples.push(indices.iter().map(|&i| elems[i].clone()).collect());
            }
            // Increment mixed-radix counter over [0, n).
            let mut pos = 0;
            loop {
                if pos == self.k {
                    self.buffer = tuples.into_iter();
                    return;
                }
                indices[pos] += 1;
                if indices[pos] < self.n {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }
}

impl<D: Domain> Iterator for TupleEnumerator<'_, D> {
    type Item = Vec<D::Elem>;

    fn next(&mut self) -> Option<Vec<D::Elem>> {
        loop {
            if let Some(t) = self.buffer.next() {
                return Some(t);
            }
            if self.k == 0 && self.n >= 1 {
                return None;
            }
            self.refill();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_domains::{NatOrder, Presburger, TraceDomain};
    use fq_logic::parse_formula;
    use fq_relational::{Schema, Value};

    fn fathers() -> State {
        let schema = Schema::new().with_relation("F", 2);
        State::new(schema)
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
            .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
            .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)])
    }

    #[test]
    fn answers_the_papers_m_query() {
        let q = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
        let out = answer_query(&NatOrder, &fathers(), &q, &["x".to_string()], 500).unwrap();
        assert_eq!(out, AnswerOutcome::Complete(vec![vec![1]]));
    }

    #[test]
    fn answers_a_non_domain_independent_finite_query() {
        // Fact 2.1-style: the least element above every stored value —
        // finite but outside the active domain. Plain enumerate-and-ask
        // handles it because the domain theory decides everything.
        let q = parse_formula(
            "(forall y. (exists p. F(y, p) | F(p, y)) -> y < x) & \
             forall z. z < x -> exists y. (exists p. F(y, p) | F(p, y)) & z <= y",
        )
        .unwrap();
        let out = answer_query(&Presburger, &fathers(), &q, &["x".to_string()], 500).unwrap();
        assert_eq!(out, AnswerOutcome::Complete(vec![vec![5]]));
    }

    #[test]
    fn unsafe_query_exhausts_budget() {
        // ¬F(x, y) is infinite: the loop must hit the budget, not lie.
        let q = parse_formula("!F(x, y)").unwrap();
        let out = answer_query(
            &NatOrder,
            &fathers(),
            &q,
            &["x".to_string(), "y".to_string()],
            50,
        )
        .unwrap();
        assert!(!out.is_complete());
        assert!(!out.found().is_empty());
    }

    #[test]
    fn empty_answer_terminates_immediately() {
        let q = parse_formula("F(x, x)").unwrap();
        let out = answer_query(&NatOrder, &fathers(), &q, &["x".to_string()], 100).unwrap();
        assert_eq!(out, AnswerOutcome::Complete(vec![]));
    }

    #[test]
    fn two_variable_answers() {
        let q = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
        let out = answer_query(
            &NatOrder,
            &fathers(),
            &q,
            &["x".to_string(), "z".to_string()],
            500,
        )
        .unwrap();
        assert_eq!(out, AnswerOutcome::Complete(vec![vec![1, 4]]));
    }

    #[test]
    fn trace_domain_answers_finite_query() {
        // Theorem 3.3 in the positive direction: the totality query of a
        // halting machine is answerable in the state c := "11".
        let m = fq_turing::builders::scan_right_halt_on_blank();
        let schema = Schema::new().with_constant("c");
        let state = State::new(schema).with_constant("c", "11");
        let q = fq_logic::bind_constants(
            &parse_formula(&format!("P(\"{}\", c, x)", fq_turing::encode_machine(&m))).unwrap(),
            &["c".to_string()].into(),
        );
        let out = answer_query(&TraceDomain, &state, &q, &["x".to_string()], 100_000).unwrap();
        // scan_right halts on "11" after 2 steps: exactly 3 traces.
        match out {
            AnswerOutcome::Complete(tuples) => {
                assert_eq!(tuples.len(), 3);
                for t in &tuples {
                    assert!(fq_turing::trace::p_predicate(
                        &fq_turing::encode_machine(&m),
                        "11",
                        &t[0]
                    ));
                }
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn tuple_enumerator_is_exhaustive_without_duplicates() {
        let d = NatOrder;
        let tuples: Vec<Vec<u64>> = TupleEnumerator::new(&d, 2).take(100).collect();
        let set: std::collections::BTreeSet<_> = tuples.iter().collect();
        assert_eq!(set.len(), tuples.len(), "duplicates produced");
        // Every pair over {0..3} appears among the first 16.
        for a in 0..4u64 {
            for b in 0..4u64 {
                assert!(tuples[..tuples.len().min(16)].contains(&vec![a, b]));
            }
        }
    }
}
