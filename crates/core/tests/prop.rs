//! Property tests for the safety theory.

use fq_core::finitize;
use fq_core::relative::{relative_safety_eq, relative_safety_nat};
use fq_domains::{DecidableTheory, Presburger};
use fq_logic::{Formula, Term};
use fq_relational::active_eval::{eval_query, NoOps};
use fq_relational::{Schema, State, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new().with_relation("R", 2)
}

fn arb_state() -> impl Strategy<Value = State> {
    proptest::collection::btree_set((0u64..5, 0u64..5), 0..5).prop_map(|tuples| {
        let mut state = State::new(schema());
        for (a, b) in tuples {
            state.insert("R", vec![Value::Nat(a), Value::Nat(b)]);
        }
        state
    })
}

/// Random single-free-variable queries mixing database atoms with order
/// atoms (so both finite and infinite answers appear).
fn arb_query() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        (0u64..5).prop_map(|k| Formula::pred("R", vec![Term::var("x"), Term::Nat(k)])),
        (0u64..5).prop_map(|k| Formula::pred("R", vec![Term::Nat(k), Term::var("x")])),
        (0u64..6).prop_map(|k| Formula::eq(Term::var("x"), Term::Nat(k))),
        (0u64..6).prop_map(|k| Formula::lt(Term::var("x"), Term::Nat(k))),
        (0u64..6).prop_map(|k| Formula::lt(Term::Nat(k), Term::var("x"))),
    ];
    atom.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
        ]
    })
}

/// Ground-truth finiteness over ⟨ℕ,<⟩ for the workload above: evaluate
/// the translated formula pointwise; the atoms only reference constants
/// < 6 and stored values < 5, so the answer set is an eventually-constant
/// predicate — if x = 50 satisfies it, it is infinite.
fn brute_finite(state: &State, q: &Formula) -> bool {
    let phi = fq_relational::translate_to_domain_formula(q, state);
    let at = |n: u64| {
        let inst = fq_logic::substitute(&phi, "x", &Term::Nat(n));
        Presburger
            .decide(&Formula::forall_many(Vec::<String>::new(), inst))
            .unwrap()
    };
    // Beyond every constant in sight, truth is constant in x.
    !at(50)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn theorem_2_5_matches_ground_truth(state in arb_state(), q in arb_query()) {
        let vars = vec!["x".to_string()];
        let decided = relative_safety_nat(&state, &q, &vars).unwrap();
        prop_assert_eq!(decided, brute_finite(&state, &q), "query {}", q);
    }

    #[test]
    fn finitization_is_idempotent_up_to_equivalence(q in arb_query(), state in arb_state()) {
        let phi = fq_relational::translate_to_domain_formula(&q, &state);
        let fin = finitize(&phi);
        // fin is finite, so finitizing again changes nothing semantically.
        prop_assert!(Presburger.equivalent(&fin, &finitize(&fin)).unwrap());
    }

    #[test]
    fn finitization_implies_original(q in arb_query(), state in arb_state()) {
        // fin(φ) → φ is valid (the transform only restricts).
        let phi = fq_relational::translate_to_domain_formula(&q, &state);
        let fin = finitize(&phi);
        let implication = Formula::forall_many(
            phi.free_vars().into_iter().collect::<Vec<_>>(),
            Formula::implies(fin, phi),
        );
        prop_assert!(Presburger.decide(&implication).unwrap());
    }

    #[test]
    fn eq_relative_safety_is_monotone_under_fresh_elements(state in arb_state()) {
        // Purely relational queries (no order): the fresh-element test
        // says finite iff the active-domain evaluation is the whole
        // answer. For positive-existential queries this is always true.
        let q = fq_logic::parse_formula("exists y. R(x, y)").unwrap();
        let finite = relative_safety_eq(&state, &q, &["x".to_string()]).unwrap();
        prop_assert!(finite);
        let answers = eval_query(&state, &NoOps, &q, &["x".to_string()]).unwrap();
        // All answers are active-domain members.
        let ad = state.active_domain();
        prop_assert!(answers.iter().all(|t| ad.contains(&t[0])));
    }

    #[test]
    fn negated_relational_queries_are_infinite_unless_trivial(state in arb_state()) {
        // ¬R(x, x) is infinite over the equality domain whenever the
        // domain has elements outside the diagonal — always.
        let q = fq_logic::parse_formula("!R(x, x)").unwrap();
        let finite = relative_safety_eq(&state, &q, &["x".to_string()]).unwrap();
        prop_assert!(!finite);
    }
}

mod negative_props {
    use fq_core::negative::{cantor_unpair, CandidateSyntax, ExactRuntimeSyntax};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn cantor_unpair_injective(r1 in 0usize..5000, r2 in 0usize..5000) {
            if r1 != r2 {
                prop_assert_ne!(cantor_unpair(r1), cantor_unpair(r2));
            }
        }

        #[test]
        fn candidates_are_well_formed(r in 0usize..30) {
            let phi = ExactRuntimeSyntax.candidate(r).unwrap();
            // Free variable is exactly x; constant c appears.
            prop_assert_eq!(
                phi.free_vars().into_iter().collect::<Vec<_>>(),
                vec!["x".to_string()]
            );
            prop_assert!(phi.named_constants().contains("c"));
        }
    }
}

mod answer_props {
    use fq_core::answer_query;
    use fq_domains::NatOrder;
    use fq_logic::{Formula, Term};
    use fq_relational::active_eval::{eval_query, NoOps};
    use fq_relational::{Schema, State, Value};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn schema() -> Schema {
        Schema::new().with_relation("R", 2)
    }

    fn arb_state() -> impl Strategy<Value = State> {
        proptest::collection::btree_set((0u64..4, 0u64..4), 0..5).prop_map(|tuples| {
            let mut state = State::new(schema());
            for (a, b) in tuples {
                state.insert("R", vec![Value::Nat(a), Value::Nat(b)]);
            }
            state
        })
    }

    /// Safe-range single-variable queries built from positive atoms.
    fn arb_safe_query() -> impl Strategy<Value = Formula> {
        let atom = prop_oneof![
            Just(Formula::exists(
                "y",
                Formula::pred("R", vec![Term::var("x"), Term::var("y")])
            )),
            Just(Formula::exists(
                "y",
                Formula::pred("R", vec![Term::var("y"), Term::var("x")])
            )),
            (0u64..4).prop_map(|k| Formula::eq(Term::var("x"), Term::Nat(k))),
            Just(Formula::pred("R", vec![Term::var("x"), Term::var("x")])),
        ];
        atom.prop_recursive(2, 6, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn enumerate_and_ask_matches_active_domain_eval(
            state in arb_state(),
            q in arb_safe_query(),
        ) {
            // Positive-existential queries are domain independent, so the
            // Section 1.1 algorithm and active-domain evaluation agree —
            // and the algorithm must terminate with a completeness
            // certificate.
            let vars = vec!["x".to_string()];
            let reference: BTreeSet<u64> = eval_query(&state, &NoOps, &q, &vars)
                .unwrap()
                .into_iter()
                .map(|t| match &t[0] {
                    Value::Nat(n) => *n,
                    _ => unreachable!(),
                })
                .collect();
            let out = answer_query(&NatOrder, &state, &q, &vars, 10_000).unwrap();
            prop_assert!(out.is_complete(), "query {} did not complete", q);
            let found: BTreeSet<u64> =
                out.found().iter().map(|t| t[0]).collect();
            prop_assert_eq!(found, reference, "query {}", q);
        }
    }
}
