//! Property tests for the domain decision procedures.
//!
//! Each quantifier elimination is checked against an independent oracle:
//! Cooper against brute-force integer search, ⟨ℕ,′⟩ against enumeration,
//! Lemma A.2's arithmetic criterion against the witness builder, and the
//! trace-domain QE against model checking over a finite sample universe.

use fq_domains::traces::lemma_a2::DESystem;
use fq_domains::traces::qe;
use fq_domains::traces::rterm::{RAtom, RFormula, RTerm};
use fq_domains::traces::{enumerate_strings, TraceDomain};
use fq_domains::{DecidableTheory, Domain, NatSucc};
use fq_logic::{Formula, Term};
use fq_turing::sym::Sort;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// ⟨ℕ, ′⟩
// ---------------------------------------------------------------------

fn arb_sterm() -> impl Strategy<Value = Term> {
    (
        prop_oneof![
            prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Term::var),
            (0u64..4).prop_map(Term::Nat),
        ],
        0u64..3,
    )
        .prop_map(|(base, primes)| base.succ_n(primes))
}

fn arb_succ_qf() -> impl Strategy<Value = Formula> {
    let atom = (arb_sterm(), arb_sterm(), any::<bool>()).prop_map(|(a, b, pos)| {
        if pos {
            Formula::eq(a, b)
        } else {
            Formula::neq(a, b)
        }
    });
    atom.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
        ]
    })
}

/// Brute-force a sentence over ℕ by bounding every quantifier to [0, 12].
fn brute_succ(f: &Formula, env: &mut std::collections::BTreeMap<String, u64>) -> bool {
    use fq_domains::nat_succ::STerm;
    fn term_val(t: &Term, env: &std::collections::BTreeMap<String, u64>) -> u64 {
        let s = STerm::from_term(t).expect("successor term");
        match s.value() {
            Some(v) => v,
            None => env[s.var().expect("var")] + s.offset,
        }
    }
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Eq(a, b) => term_val(a, env) == term_val(b, env),
        Formula::Not(g) => !brute_succ(g, env),
        Formula::And(gs) => gs.iter().all(|g| brute_succ(g, env)),
        Formula::Or(gs) => gs.iter().any(|g| brute_succ(g, env)),
        Formula::Implies(a, b) => !brute_succ(a, env) || brute_succ(b, env),
        Formula::Iff(a, b) => brute_succ(a, env) == brute_succ(b, env),
        Formula::Exists(v, g) => (0..=12).any(|k| {
            env.insert(v.clone(), k);
            let r = brute_succ(g, env);
            env.remove(v);
            r
        }),
        Formula::Forall(v, g) => (0..=12).all(|k| {
            env.insert(v.clone(), k);
            let r = brute_succ(g, env);
            env.remove(v);
            r
        }),
        Formula::Pred(..) => unreachable!("successor fragment has no predicates"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn nat_succ_qe_matches_bounded_search(body in arb_succ_qf()) {
        // ∃-close the body; witnesses for this fragment fit far below the
        // brute-force bound of 12 (constants < 4, offsets < 3, depth ≤ 3).
        let vars: Vec<String> = body.free_vars().into_iter().collect();
        let sentence = Formula::exists_many(vars, body);
        let qe_answer = NatSucc.decide(&sentence).unwrap();
        let brute = brute_succ(&sentence, &mut Default::default());
        prop_assert_eq!(qe_answer, brute, "sentence: {}", sentence);
    }

}

// ---------------------------------------------------------------------
// Lemma A.2
// ---------------------------------------------------------------------

fn arb_word(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(prop_oneof![Just('1'), Just('&')], 0..=max_len)
        .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lemma_a2_criterion_agrees_with_builder(
        at_least in proptest::collection::vec((arb_word(5), 1usize..5), 0..3),
        exactly in proptest::collection::vec((arb_word(5), 1usize..5), 0..3),
    ) {
        let sys = DESystem { at_least, exactly };
        prop_assert_eq!(sys.satisfiable(), sys.witness().is_some());
    }

    #[test]
    fn lemma_a2_witness_meets_constraints(
        at_least in proptest::collection::vec((arb_word(5), 1usize..5), 0..3),
        exactly in proptest::collection::vec((arb_word(5), 1usize..5), 0..3),
    ) {
        let sys = DESystem { at_least, exactly };
        if let Some(m) = sys.witness() {
            for (v, i) in &sys.at_least {
                prop_assert!(fq_turing::trace::has_at_least_traces(&m, v, *i));
            }
            for (u, j) in &sys.exactly {
                prop_assert!(fq_turing::trace::has_exactly_traces(&m, u, *j));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Trace-domain quantifier elimination vs model checking.
// ---------------------------------------------------------------------

/// A sample universe: all strings of length ≤ 5 over the four-letter
/// alphabet, plus a few machines with their traces.
fn sample_universe() -> Vec<String> {
    let mut u = enumerate_strings(1365); // lengths 0..=5
    for m in [
        fq_turing::builders::halter(),
        fq_turing::builders::looper(),
        fq_turing::builders::scan_right_halt_on_blank(),
    ] {
        let enc = fq_turing::encode_machine(&m);
        for w in ["", "1", "11", "1&"] {
            for k in 1..=3 {
                if let Some(t) = fq_turing::trace::trace_string(&m, w, k) {
                    u.push(t);
                }
            }
        }
        u.push(enc);
    }
    u.sort();
    u.dedup();
    u
}

/// Atoms over one variable from the sort/prefix/equality fragment, whose
/// witnesses (when they exist) always occur within the sample universe.
fn arb_small_atom() -> impl Strategy<Value = RAtom> {
    let x = RTerm::Var("x".to_string());
    let consts = prop_oneof![
        Just(String::new()),
        Just("1".to_string()),
        Just("1&".to_string()),
        Just("*".to_string()),
        Just("##".to_string()),
    ];
    prop_oneof![
        prop_oneof![
            Just(Sort::Machine),
            Just(Sort::Word),
            Just(Sort::Trace),
            Just(Sort::Other)
        ]
        .prop_map({
            let x = x.clone();
            move |s| RAtom::IsSort(s, x.clone())
        }),
        arb_word(2).prop_map({
            let x = x.clone();
            move |w| RAtom::Prefix(w, x.clone())
        }),
        consts.clone().prop_map({
            let x = x.clone();
            move |c| RAtom::Eq(x.clone(), RTerm::Lit(c))
        }),
        consts.prop_map({
            let x = x.clone();
            move |c| RAtom::Eq(RTerm::w_of(x.clone()), RTerm::Lit(c))
        }),
    ]
}

fn arb_small_qf() -> impl Strategy<Value = RFormula> {
    let lit = (arb_small_atom(), any::<bool>()).prop_map(|(a, pos)| {
        let f = RFormula::Atom(a);
        if pos {
            f
        } else {
            RFormula::not(f)
        }
    });
    lit.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RFormula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RFormula::Or(vec![a, b])),
        ]
    })
}

/// Evaluate a QF Reach formula at `x := value`.
fn check_at(f: &RFormula, value: &str) -> bool {
    let instantiated = f.subst("x", &RTerm::Lit(value.to_string()));
    fq_domains::traces::ground::eval_formula(&instantiated).expect("ground")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn trace_qe_exists_matches_model_checking(body in arb_small_qf()) {
        let universe = sample_universe();
        let sentence = RFormula::Exists("x".to_string(), Box::new(body.clone()));
        let qe_answer = qe::decide(&sentence).unwrap();
        let witness = universe.iter().any(|s| check_at(&body, s));
        // Witness found ⟹ QE must agree; and for this small fragment
        // witnesses, when they exist, are within the sample universe.
        prop_assert_eq!(qe_answer, witness, "body: {:?}", body);
    }

    #[test]
    fn trace_qe_forall_matches_model_checking(body in arb_small_qf()) {
        let universe = sample_universe();
        let sentence = RFormula::Forall("x".to_string(), Box::new(body.clone()));
        let qe_answer = qe::decide(&sentence).unwrap();
        let counterexample = universe.iter().any(|s| !check_at(&body, s));
        prop_assert_eq!(qe_answer, !counterexample, "body: {:?}", body);
    }

    #[test]
    fn trace_qe_output_is_quantifier_free(body in arb_small_qf()) {
        let f = RFormula::Exists("x".to_string(), Box::new(body));
        prop_assert!(qe::eliminate(&f).is_quantifier_free());
    }
}

// ---------------------------------------------------------------------
// Engine equivalence: parallel ≡ sequential, cached ≡ cold.
// ---------------------------------------------------------------------

fn arb_pres_term() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        prop_oneof![Just("x"), Just("y")].prop_map(Term::var),
        (0u64..4).prop_map(Term::Nat),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), inner).prop_map(|(a, b)| Term::app2("+", a, b))
    })
}

fn arb_pres_qf() -> impl Strategy<Value = Formula> {
    let atom = (arb_pres_term(), arb_pres_term(), 0usize..3).prop_map(|(a, b, op)| match op {
        0 => Formula::eq(a, b),
        1 => Formula::pred("<", vec![a, b]),
        _ => Formula::pred("<=", vec![a, b]),
    });
    atom.prop_recursive(2, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            inner.clone().prop_map(|a| Formula::Not(Box::new(a))),
        ]
    })
}

fn test_engine() -> fq_engine::Engine {
    fq_engine::Engine::new(fq_engine::EngineConfig {
        threads: 4,
        cache_capacity: 1 << 14,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn presburger_parallel_decide_matches_sequential(body in arb_pres_qf(), close_exists in any::<bool>()) {
        let vars: Vec<String> = body.free_vars().into_iter().collect();
        let sentence = if close_exists {
            Formula::exists_many(vars, body)
        } else {
            Formula::forall_many(vars, body)
        };
        let seq = fq_domains::Presburger.decide(&sentence).unwrap();
        let engine = test_engine();
        let par = fq_domains::Presburger.decide_with(&sentence, &engine).unwrap();
        prop_assert_eq!(seq, par, "sentence: {}", sentence);
        // A warm cache must be semantically transparent.
        let warm = fq_domains::Presburger.decide_with(&sentence, &engine).unwrap();
        prop_assert_eq!(par, warm, "warm cache changed the answer: {}", sentence);
    }

    #[test]
    fn presburger_parallel_eliminate_is_bit_identical(body in arb_pres_qf()) {
        let vars: Vec<String> = body.free_vars().into_iter().collect();
        let sentence = Formula::exists_many(vars, body);
        let p = fq_domains::presburger::from_logic(&sentence, true).unwrap();
        let cold = fq_domains::presburger::eliminate(&p);
        let engine = test_engine();
        let par = fq_domains::presburger::eliminate_with(&engine, &p);
        prop_assert_eq!(&cold, &par, "parallel eliminate diverged");
        let warm = fq_domains::presburger::eliminate_with(&engine, &p);
        prop_assert_eq!(&cold, &warm, "cached eliminate diverged");
    }

    #[test]
    fn trace_parallel_eliminate_is_bit_identical(body in arb_small_qf()) {
        let f = RFormula::Exists("x".to_string(), Box::new(body));
        let cold = qe::eliminate(&f);
        let engine = test_engine();
        let par = qe::eliminate_with(&engine, &f);
        prop_assert_eq!(&cold, &par, "parallel eliminate diverged");
        let warm = qe::eliminate_with(&engine, &f);
        prop_assert_eq!(&cold, &warm, "cached eliminate diverged");
    }

    #[test]
    fn trace_parallel_decide_matches_sequential(body in arb_two_var_qf()) {
        let sentence = RFormula::Exists(
            "x".to_string(),
            Box::new(RFormula::Forall("y".to_string(), Box::new(body))),
        );
        let seq = qe::decide(&sentence).unwrap();
        let engine = test_engine();
        let par = qe::decide_with(&engine, &sentence).unwrap();
        prop_assert_eq!(seq, par, "sentence: {}", sentence);
    }
}

// ---------------------------------------------------------------------
// Domain trait sanity.
// ---------------------------------------------------------------------

#[test]
fn trace_domain_enumeration_is_injective_and_total() {
    let d = TraceDomain;
    let elems = d.enumerate(300);
    assert_eq!(elems.len(), 300);
    for e in &elems {
        assert_eq!(d.parse_elem(&d.elem_term(e)), Some(e.clone()));
    }
}

// ---------------------------------------------------------------------
// Two-variable trace-QE cross-validation.
// ---------------------------------------------------------------------

/// Atoms relating two variables x and y from the sort/prefix/equality
/// fragment, with witnesses inside the sample universe.
fn arb_two_var_atom() -> impl Strategy<Value = RAtom> {
    let term = prop_oneof![
        Just(RTerm::Var("x".to_string())),
        Just(RTerm::Var("y".to_string())),
        Just(RTerm::Lit("1".to_string())),
        Just(RTerm::Lit("1&".to_string())),
        Just(RTerm::Lit(String::new())),
    ];
    prop_oneof![
        (
            prop_oneof![
                Just(Sort::Machine),
                Just(Sort::Word),
                Just(Sort::Trace),
                Just(Sort::Other)
            ],
            term.clone()
        )
            .prop_map(|(s, t)| RAtom::IsSort(s, t)),
        (arb_word(2), term.clone()).prop_map(|(w, t)| RAtom::Prefix(w, t)),
        (term.clone(), term.clone()).prop_map(|(a, b)| RAtom::Eq(a, b)),
        (term.clone(), term).prop_map(|(a, b)| RAtom::Eq(RTerm::w_of(a), b)),
    ]
}

fn arb_two_var_qf() -> impl Strategy<Value = RFormula> {
    let lit = (arb_two_var_atom(), any::<bool>()).prop_map(|(a, pos)| {
        let f = RFormula::Atom(a);
        if pos {
            f
        } else {
            RFormula::not(f)
        }
    });
    lit.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RFormula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| RFormula::Or(vec![a, b])),
        ]
    })
}

fn check_at_two(f: &RFormula, x: &str, y: &str) -> bool {
    let instantiated = f
        .subst("x", &RTerm::Lit(x.to_string()))
        .subst("y", &RTerm::Lit(y.to_string()));
    fq_domains::traces::ground::eval_formula(&instantiated).expect("ground")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trace_qe_two_variable_exists_matches_model_checking(body in arb_two_var_qf()) {
        // Small universe for the double loop: strings of length ≤ 3 plus
        // machine encodings and traces (which are all longer than 3 and
        // must be present for the Trace/Machine-sort witnesses).
        let mut universe = enumerate_strings(85);
        for m in [
            fq_turing::builders::halter(),
            fq_turing::builders::looper(),
            fq_turing::builders::scan_right_halt_on_blank(),
        ] {
            universe.push(fq_turing::encode_machine(&m));
            for w in ["", "1", "1&"] {
                for k in 1..=2 {
                    if let Some(t) = fq_turing::trace::trace_string(&m, w, k) {
                        universe.push(t);
                    }
                }
            }
        }
        universe.sort();
        universe.dedup();
        let sentence = RFormula::Exists(
            "x".to_string(),
            Box::new(RFormula::Exists("y".to_string(), Box::new(body.clone()))),
        );
        let qe_answer = qe::decide(&sentence).unwrap();
        let witness = universe
            .iter()
            .any(|a| universe.iter().any(|b| check_at_two(&body, a, b)));
        // Witness in the sample ⟹ QE must say true. (The converse needs
        // the witness-containment argument, which holds for this fragment
        // with constants of length ≤ 2 — checked both ways.)
        prop_assert_eq!(qe_answer, witness, "body: {}", body);
    }

    #[test]
    fn trace_qe_exists_forall_no_false_negatives(body in arb_two_var_qf()) {
        // ∃x∀y: model checking over a finite sample refutes soundly (a
        // counterexample y kills a candidate x) but cannot affirm; check
        // only the direction "QE true ⟹ every sampled x has no sampled
        // counterexample is WRONG"; instead: QE true for ∃x∀y φ implies
        // for SOME x all sampled y pass. Equivalently: if every sampled x
        // has a sampled counterexample AND the witnesses x must be small
        // (not guaranteed here), we cannot conclude — so assert only the
        // sound direction: QE false ⟹ no x in the sample passes all y in
        // the *full domain*; weaker: no x passes all sampled y … that is
        // also not implied. The only universally sound check: if QE says
        // false, then for every sampled x there exists SOME y in the full
        // domain failing φ — verify via the single-variable eliminator.
        let universe = enumerate_strings(40);
        let sentence = RFormula::Exists(
            "x".to_string(),
            Box::new(RFormula::Forall("y".to_string(), Box::new(body.clone()))),
        );
        let qe_answer = qe::decide(&sentence).unwrap();
        if !qe_answer {
            for a in &universe {
                let inner = RFormula::Forall(
                    "y".to_string(),
                    Box::new(body.subst("x", &RTerm::Lit(a.clone()))),
                );
                prop_assert!(
                    !qe::decide(&inner).unwrap(),
                    "QE said ∃x∀y false but x = {a:?} passes; body: {}",
                    body
                );
            }
        }
    }
}
