//! The domain ⟨ℤ, <⟩ (and its Presburger extension).
//!
//! Section 2.1: "integers with < can be handled similarly after a minor
//! modification of the finitization procedure" — the bound must clamp the
//! answers from **both** sides (`fq-core`'s `finitize_two_sided`).
//! Decision is Cooper's procedure without the ℕ relativization.

use crate::domain::{DecidableTheory, Domain, DomainError};
use crate::presburger::Presburger;
use fq_logic::{Formula, Term};

/// The domain ⟨ℤ, <, +⟩. Elements are encoded as `i64`; the canonical
/// enumeration alternates 0, 1, −1, 2, −2, …
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IntOrder;

impl IntOrder {
    /// The ground term denoting an integer: non-negative values are
    /// numerals, negative values are `0 - |n|`.
    pub fn int_term(n: i64) -> Term {
        if n >= 0 {
            Term::Nat(n as u64)
        } else {
            Term::app2("-", Term::Nat(0), Term::Nat(n.unsigned_abs()))
        }
    }
}

impl Domain for IntOrder {
    type Elem = i64;

    fn name(&self) -> String {
        "⟨Z, <, +⟩".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<i64> {
        (0..n as i64)
            .map(|k| if k % 2 == 0 { k / 2 } else { -(k / 2) - 1 })
            .collect()
    }

    fn elem_term(&self, e: &i64) -> Term {
        Self::int_term(*e)
    }

    fn parse_elem(&self, t: &Term) -> Option<i64> {
        match t {
            Term::Nat(n) => i64::try_from(*n).ok(),
            Term::App(f, args) if f == "-" && args.len() == 2 => match (&args[0], &args[1]) {
                (Term::Nat(0), Term::Nat(n)) => i64::try_from(*n).ok().map(|v| -v),
                _ => None,
            },
            _ => None,
        }
    }
}

impl DecidableTheory for IntOrder {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        Presburger.decide_over_integers(sentence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        IntOrder.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn no_endpoints() {
        // Unlike ℕ there is no least element.
        assert!(!decide("exists y. forall x. y <= x"));
        assert!(decide("forall x. exists y. y < x"));
        assert!(decide("forall x. exists y. x < y"));
    }

    #[test]
    fn discreteness() {
        assert!(decide("forall x. !(exists z. x < z & z < x + 1)"));
    }

    #[test]
    fn negative_constants() {
        // 0 − 3 < 0 over ℤ.
        assert!(decide("0 - 3 < 0"));
        assert!(decide("exists x. x < 0"));
    }

    #[test]
    fn enumeration_alternates() {
        assert_eq!(IntOrder.enumerate(5), vec![0, -1, 1, -2, 2]);
    }

    #[test]
    fn int_term_round_trip() {
        for n in [-5i64, -1, 0, 1, 7] {
            assert_eq!(IntOrder.parse_elem(&IntOrder::int_term(n)), Some(n), "{n}");
        }
    }
}
