//! Presburger arithmetic ⟨ℕ, <, +, =, divisibility⟩, decided by Cooper's
//! quantifier elimination.
//!
//! This is the canonical decidable *extension of ⟨ℕ, <⟩* that Theorem 2.2
//! covers ("this simple trick works for a great many domains, including
//! natural numbers with <, +, and −"), and it is the decision back-end for
//! the Theorem 2.5 relative-safety procedure in `fq-core`.

pub mod cooper;
pub mod linear;
pub mod pformula;

pub use cooper::{eliminate, eliminate_exists, eliminate_exists_with, eliminate_with};
pub use linear::LinTerm;
pub use pformula::{from_logic, PAtom, PFormula};

use crate::domain::{require_sentence, DecidableTheory, Domain, DomainError};
use fq_engine::Engine;
use fq_logic::{Formula, Term};

/// The domain ⟨ℕ, <, ≤, +, −, succ, ·const, divisibility, =⟩.
///
/// Quantifiers range over ℕ; internally every quantifier is relativized to
/// `0 ≤ x` and the sentence decided over ℤ by Cooper's procedure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Presburger;

impl Presburger {
    /// Compute a quantifier-free equivalent (over ℕ, with quantifiers
    /// relativized) of a formula, rendered back into surface syntax.
    pub fn quantifier_free_equivalent(&self, f: &Formula) -> Result<Formula, DomainError> {
        let p = from_logic(f, true)?;
        Ok(eliminate(&p).to_logic())
    }

    /// Decide a sentence over the **integers** instead of ℕ (no
    /// relativization). Used by tests and by callers that want plain ℤ.
    pub fn decide_over_integers(&self, sentence: &Formula) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        let p = from_logic(sentence, false)?;
        Ok(eliminate(&p).eval_ground())
    }
}

impl Domain for Presburger {
    type Elem = u64;

    fn name(&self) -> String {
        "⟨N, <, +⟩ (Presburger)".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn elem_term(&self, e: &u64) -> Term {
        Term::Nat(*e)
    }

    fn parse_elem(&self, t: &Term) -> Option<u64> {
        match t {
            Term::Nat(n) => Some(*n),
            _ => None,
        }
    }
}

impl DecidableTheory for Presburger {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        self.decide_with(sentence, &Engine::sequential())
    }

    fn decide_with(&self, sentence: &Formula, engine: &Engine) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        let p = from_logic(sentence, true)?;
        Ok(eliminate_with(engine, &p).eval_ground())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        Presburger.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn nat_has_a_least_element() {
        // True over ℕ, false over ℤ.
        let s = "exists y. forall x. y <= x";
        assert!(decide(s));
        assert!(!Presburger
            .decide_over_integers(&parse_formula(s).unwrap())
            .unwrap());
    }

    #[test]
    fn zero_is_the_least_element() {
        assert!(decide("forall x. 0 <= x"));
        assert!(!decide("exists x. x < 0"));
    }

    #[test]
    fn no_maximum() {
        assert!(decide("forall x. exists y. x < y"));
        assert!(!decide("exists x. forall y. y <= x"));
    }

    #[test]
    fn subtraction_is_interpreted_as_integer_minus() {
        // `x - y` in a formula is linear-term subtraction; over ℕ the
        // sentence ∀x∀y (x - y = 0 → x = y) is false (x=0,y=1 gives -1 ≠ 0…
        // actually -1 ≠ 0 so the implication is vacuous) — pick a sharper
        // test: ∀x (x + 1 - 1 = x).
        assert!(decide("forall x. x + 1 - 1 = x"));
    }

    #[test]
    fn addition_facts() {
        assert!(decide("forall x y. x + y = y + x"));
        assert!(decide("forall x. exists y. y = x + x"));
        assert!(!decide("forall x. exists y. x = y + y"));
        assert!(decide("forall x. exists y. x = y + y | x = y + y + 1"));
    }

    #[test]
    fn equivalence_helper() {
        let a = parse_formula("x < 3").unwrap();
        let b = parse_formula("x = 0 | x = 1 | x = 2").unwrap();
        assert!(Presburger.equivalent(&a, &b).unwrap());
        let c = parse_formula("x < 4").unwrap();
        assert!(!Presburger.equivalent(&a, &c).unwrap());
    }

    #[test]
    fn qf_equivalent_is_quantifier_free() {
        let f = parse_formula("exists y. x < y & y < x + 3").unwrap();
        let qf = Presburger.quantifier_free_equivalent(&f).unwrap();
        assert!(qf.is_quantifier_free());
    }

    #[test]
    fn rejects_open_sentences() {
        assert!(matches!(
            Presburger.decide(&parse_formula("x = 0").unwrap()),
            Err(DomainError::NotASentence { .. })
        ));
    }

    #[test]
    fn domain_trait_basics() {
        assert_eq!(Presburger.enumerate(3), vec![0, 1, 2]);
        assert_eq!(Presburger.elem_term(&7), Term::Nat(7));
        assert_eq!(Presburger.parse_elem(&Term::Nat(7)), Some(7));
        assert_eq!(Presburger.parse_elem(&Term::var("x")), None);
    }
}
