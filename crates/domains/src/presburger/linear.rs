//! Linear terms over integer coefficients.

use fq_logic::Term;
use std::collections::BTreeMap;
use std::fmt;

/// A linear term `Σ cᵢ·xᵢ + k` with `i128` coefficients.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinTerm {
    /// Variable coefficients; zero coefficients are never stored.
    coeffs: BTreeMap<String, i128>,
    /// The constant part.
    pub constant: i128,
}

impl LinTerm {
    /// The constant term `k`.
    pub fn constant(k: i128) -> Self {
        LinTerm {
            coeffs: BTreeMap::new(),
            constant: k,
        }
    }

    /// The variable term `1·v`.
    pub fn var(v: impl Into<String>) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v.into(), 1);
        LinTerm {
            coeffs,
            constant: 0,
        }
    }

    /// The coefficient of a variable (0 if absent).
    pub fn coeff(&self, v: &str) -> i128 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// Iterate over (variable, coefficient) pairs.
    pub fn coeffs(&self) -> impl Iterator<Item = (&str, i128)> {
        self.coeffs.iter().map(|(v, c)| (v.as_str(), *c))
    }

    /// Whether the term mentions no variables.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Whether the term mentions the variable.
    pub fn mentions(&self, v: &str) -> bool {
        self.coeffs.contains_key(v)
    }

    /// Term addition.
    pub fn add(&self, other: &LinTerm) -> LinTerm {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let e = out.coeffs.entry(v.clone()).or_insert(0);
            *e += c;
            if *e == 0 {
                out.coeffs.remove(v);
            }
        }
        out.constant += other.constant;
        out
    }

    /// Term subtraction.
    pub fn sub(&self, other: &LinTerm) -> LinTerm {
        self.add(&other.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i128) -> LinTerm {
        if k == 0 {
            return LinTerm::constant(0);
        }
        LinTerm {
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, c)| (v.clone(), c * k))
                .collect(),
            constant: self.constant * k,
        }
    }

    /// Drop the variable `v` from the term (used after isolating it).
    pub fn without(&self, v: &str) -> LinTerm {
        let mut out = self.clone();
        out.coeffs.remove(v);
        out
    }

    /// Substitute `replacement` for the variable `v`.
    pub fn subst(&self, v: &str, replacement: &LinTerm) -> LinTerm {
        let c = self.coeff(v);
        if c == 0 {
            return self.clone();
        }
        self.without(v).add(&replacement.scale(c))
    }

    /// Evaluate under an assignment; `None` if a variable is unbound.
    pub fn eval(&self, env: &BTreeMap<String, i128>) -> Option<i128> {
        let mut total = self.constant;
        for (v, c) in &self.coeffs {
            total += c * env.get(v)?;
        }
        Some(total)
    }

    /// Convert an `fq-logic` term over the Presburger signature
    /// (`Nat`, `Var`, `+`, `-`, `succ`, and `*` by a constant) into a
    /// linear term. Returns `None` for non-linear or foreign terms.
    pub fn from_term(t: &Term) -> Option<LinTerm> {
        match t {
            Term::Var(v) => Some(LinTerm::var(v.clone())),
            Term::Nat(n) => Some(LinTerm::constant(*n as i128)),
            Term::Str(_) => None,
            Term::App(f, args) => match (f.as_str(), args.as_slice()) {
                ("+", [a, b]) => Some(LinTerm::from_term(a)?.add(&LinTerm::from_term(b)?)),
                ("-", [a, b]) => Some(LinTerm::from_term(a)?.sub(&LinTerm::from_term(b)?)),
                ("succ", [a]) => Some(LinTerm::from_term(a)?.add(&LinTerm::constant(1))),
                ("*", [a, b]) => {
                    let la = LinTerm::from_term(a)?;
                    let lb = LinTerm::from_term(b)?;
                    if la.is_constant() {
                        Some(lb.scale(la.constant))
                    } else if lb.is_constant() {
                        Some(la.scale(lb.constant))
                    } else {
                        None // non-linear
                    }
                }
                _ => None,
            },
        }
    }

    /// Convert back to an `fq-logic` term pair `(lhs, rhs)` such that the
    /// linear term equals `lhs − rhs` with both sides free of negative
    /// coefficients (suitable for printing over ℕ).
    pub fn to_term_sides(&self) -> (Term, Term) {
        let mut pos: Vec<Term> = Vec::new();
        let mut neg: Vec<Term> = Vec::new();
        for (v, c) in &self.coeffs {
            let (target, mag) = if *c > 0 {
                (&mut pos, *c)
            } else {
                (&mut neg, -c)
            };
            let base = Term::var(v.clone());
            target.push(if mag == 1 {
                base
            } else {
                Term::app2("*", Term::Nat(mag as u64), base)
            });
        }
        if self.constant > 0 {
            pos.push(Term::Nat(self.constant as u64));
        } else if self.constant < 0 {
            neg.push(Term::Nat((-self.constant) as u64));
        }
        let side = |mut ts: Vec<Term>| -> Term {
            if ts.is_empty() {
                Term::Nat(0)
            } else {
                let first = ts.remove(0);
                ts.into_iter().fold(first, |acc, t| Term::app2("+", acc, t))
            }
        };
        (side(pos), side(neg))
    }
}

impl fmt::Display for LinTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == 1 {
                    write!(f, "{v}")?;
                } else if *c == -1 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}{v}")?;
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_term;

    fn lt(s: &str) -> LinTerm {
        LinTerm::from_term(&parse_term(s).unwrap()).unwrap()
    }

    #[test]
    fn parses_linear_terms() {
        let t = lt("2 * x + y + 3");
        assert_eq!(t.coeff("x"), 2);
        assert_eq!(t.coeff("y"), 1);
        assert_eq!(t.constant, 3);
    }

    #[test]
    fn succ_adds_one() {
        let t = lt("x''");
        assert_eq!(t.coeff("x"), 1);
        assert_eq!(t.constant, 2);
    }

    #[test]
    fn subtraction_cancels() {
        let t = lt("x + y - x");
        assert_eq!(t.coeff("x"), 0);
        assert!(!t.mentions("x"));
        assert_eq!(t.coeff("y"), 1);
    }

    #[test]
    fn rejects_nonlinear() {
        assert!(LinTerm::from_term(&parse_term("x * y").unwrap()).is_none());
    }

    #[test]
    fn constant_times_var_is_linear() {
        let t = lt("x * 3");
        assert_eq!(t.coeff("x"), 3);
    }

    #[test]
    fn substitution() {
        let t = lt("2 * x + y");
        let r = t.subst("x", &lt("z + 1"));
        assert_eq!(r.coeff("z"), 2);
        assert_eq!(r.coeff("y"), 1);
        assert_eq!(r.constant, 2);
        assert!(!r.mentions("x"));
    }

    #[test]
    fn eval_under_assignment() {
        let t = lt("2 * x + y + 1");
        let env: BTreeMap<String, i128> = [("x".into(), 3), ("y".into(), 4)].into();
        assert_eq!(t.eval(&env), Some(11));
        let partial: BTreeMap<String, i128> = [("x".into(), 3)].into();
        assert_eq!(t.eval(&partial), None);
    }

    #[test]
    fn to_term_sides_splits_signs() {
        let t = lt("x - y - 2");
        let (l, r) = t.to_term_sides();
        assert_eq!(l.to_string(), "x");
        assert_eq!(r.to_string(), "(y + 2)");
    }

    #[test]
    fn display_formats() {
        assert_eq!(lt("2 * x + y + 3").to_string(), "2x + y + 3");
        assert_eq!(lt("0 - x").to_string(), "-x");
        assert_eq!(LinTerm::constant(-5).to_string(), "-5");
    }

    #[test]
    fn scale_by_zero_is_zero() {
        assert_eq!(lt("x + 1").scale(0), LinTerm::constant(0));
    }
}
