//! Cooper's quantifier elimination for Presburger arithmetic (over ℤ).
//!
//! Section 2 of the paper notes that the finitization trick "works for a
//! great many domains, including natural numbers with <, +, and −
//! (aka Presburger arithmetic)". Deciding the resulting sentences —
//! equivalence of a formula with its finitization, Theorem 2.5 — needs an
//! actual decision procedure; this module provides the classic one.
//!
//! Given `∃x φ` with quantifier-free `φ`, the algorithm (per conjunct of a
//! DNF):
//!
//! 1. normalizes negations away (only negated divisibilities remain);
//! 2. scales every `x`-atom so `x`'s coefficient is `±δ` (the lcm), then
//!    substitutes `y = δ·x`, adding `δ ∣ y`;
//! 3. replaces `∃y ψ(y)` by
//!    `⋁_{j=1..m} ψ_{−∞}(j) ∨ ⋁_{j=1..m} ⋁_{b ∈ B} ψ(b + j)` where `m` is
//!    the lcm of the divisors and `B` collects the lower-bound terms and
//!    `e − 1` for each equation `y = e`.

use super::linear::LinTerm;
use super::pformula::{PAtom, PFormula};
use fq_engine::Engine;

/// Eliminate all quantifiers, producing an equivalent quantifier-free
/// formula (over ℤ), with a private sequential [`Engine`].
pub fn eliminate(f: &PFormula) -> PFormula {
    eliminate_with(&Engine::sequential(), f)
}

/// Eliminate all quantifiers through an explicit [`Engine`]: independent
/// `And`/`Or` children fan out across the engine's worker threads, and
/// `∃`-elimination results are memoized on hash-consed subformula ids.
/// Results are identical to [`eliminate`] for every configuration.
pub fn eliminate_with(engine: &Engine, f: &PFormula) -> PFormula {
    match f {
        PFormula::True | PFormula::False | PFormula::Atom(_) => psimplify(f),
        PFormula::Not(inner) => PFormula::not(eliminate_with(engine, inner)),
        PFormula::And(fs) => PFormula::and(engine.parallel_map(fs, |g| eliminate_with(engine, g))),
        PFormula::Or(fs) => PFormula::or(engine.parallel_map(fs, |g| eliminate_with(engine, g))),
        PFormula::Exists(v, body) => psimplify(&eliminate_exists_with(
            engine,
            v,
            &eliminate_with(engine, body),
        )),
        PFormula::Forall(v, body) => psimplify(&PFormula::not(eliminate_exists_with(
            engine,
            v,
            &PFormula::not(eliminate_with(engine, body)),
        ))),
    }
}

/// Constant folding and deduplication. Keeps eliminated formulas from
/// growing doubly exponentially across nested quantifiers: most atoms
/// produced by the boundary substitutions are ground and fold away.
pub fn psimplify(f: &PFormula) -> PFormula {
    match f {
        PFormula::True | PFormula::False => f.clone(),
        PFormula::Atom(a) => {
            if a.term().is_constant() {
                if a.eval_ground() {
                    PFormula::True
                } else {
                    PFormula::False
                }
            } else {
                f.clone()
            }
        }
        PFormula::Not(inner) => PFormula::not(psimplify(inner)),
        PFormula::And(fs) => {
            let mut seen: std::collections::BTreeSet<PFormula> = std::collections::BTreeSet::new();
            for g in fs {
                let s = psimplify(g);
                match s {
                    PFormula::True => {}
                    PFormula::False => return PFormula::False,
                    PFormula::And(inner) => seen.extend(inner),
                    other => {
                        seen.insert(other);
                    }
                }
            }
            match tighten_conjunction(seen) {
                Some(tight) => PFormula::and(tight),
                None => PFormula::False,
            }
        }
        PFormula::Or(fs) => {
            let mut seen: std::collections::BTreeSet<PFormula> = std::collections::BTreeSet::new();
            for g in fs {
                let s = psimplify(g);
                match s {
                    PFormula::False => {}
                    PFormula::True => return PFormula::True,
                    PFormula::Or(inner) => seen.extend(inner),
                    other => {
                        seen.insert(other);
                    }
                }
            }
            PFormula::or(subsume_disjunction(seen))
        }
        PFormula::Exists(v, body) => PFormula::Exists(v.clone(), Box::new(psimplify(body))),
        PFormula::Forall(v, body) => PFormula::Forall(v.clone(), Box::new(psimplify(body))),
    }
}

/// Per-family bound information used by [`tighten_conjunction`].
#[derive(Clone, Copy, Default)]
struct Bounds {
    lo: Option<i128>, // family value ≥ lo
    hi: Option<i128>, // family value ≤ hi
    eq: Option<i128>, // family value = eq
}

/// Merge interval constraints inside a conjunction.
///
/// All `Pos`/`Zero` atoms whose non-constant parts coincide up to sign are
/// constraints on one integer quantity; they are folded into a single
/// lower bound / upper bound / equation, and contradictions (empty
/// intervals) collapse the conjunction to `False` (`None`). This is the
/// key defence against the exponential growth of nested Cooper rounds:
/// boundary substitutions mass-produce comparisons of the same terms
/// against different constants.
fn tighten_conjunction(
    formulas: std::collections::BTreeSet<PFormula>,
) -> Option<std::collections::BTreeSet<PFormula>> {
    use std::collections::BTreeMap;
    let mut out: std::collections::BTreeSet<PFormula> = std::collections::BTreeSet::new();
    let mut families: BTreeMap<LinTerm, Bounds> = BTreeMap::new();

    for f in formulas {
        let atom = match &f {
            PFormula::Atom(a @ (PAtom::Pos(_) | PAtom::Zero(_))) => a.clone(),
            _ => {
                out.insert(f);
                continue;
            }
        };
        let t = atom.term();
        let mut shape = t.clone();
        shape.constant = 0;
        // Canonical orientation: make the first coefficient positive.
        let ori = match shape.coeffs().next() {
            Some((_, c)) if c < 0 => -1,
            _ => 1,
        };
        let key = shape.scale(ori);
        let c = t.constant;
        let entry = families.entry(key).or_default();
        match atom {
            // 0 < ori·key + c  ⟺  ori·key ≥ 1 − c.
            PAtom::Pos(_) => {
                if ori == 1 {
                    let lo = 1 - c;
                    entry.lo = Some(entry.lo.map_or(lo, |old| old.max(lo)));
                } else {
                    // −key ≥ 1 − c ⟺ key ≤ c − 1.
                    let hi = c - 1;
                    entry.hi = Some(entry.hi.map_or(hi, |old| old.min(hi)));
                }
            }
            // ori·key + c = 0 ⟺ key = −ori·c.
            PAtom::Zero(_) => {
                let e = -ori * c;
                match entry.eq {
                    Some(prev) if prev != e => return None,
                    _ => entry.eq = Some(e),
                }
            }
            PAtom::Div(..) => unreachable!("matched Pos/Zero above"),
        }
    }

    for (key, b) in families {
        if let Some(e) = b.eq {
            if b.lo.is_some_and(|lo| e < lo) || b.hi.is_some_and(|hi| e > hi) {
                return None;
            }
            out.insert(PFormula::Atom(PAtom::Zero(key.sub(&LinTerm::constant(e)))));
            continue;
        }
        if let (Some(lo), Some(hi)) = (b.lo, b.hi) {
            if lo > hi {
                return None;
            }
        }
        if let Some(lo) = b.lo {
            // key ≥ lo ⟺ 0 < key − lo + 1.
            out.insert(PFormula::Atom(PAtom::Pos(
                key.sub(&LinTerm::constant(lo - 1)),
            )));
        }
        if let Some(hi) = b.hi {
            // key ≤ hi ⟺ 0 < hi − key + 1.
            out.insert(PFormula::Atom(PAtom::Pos(
                LinTerm::constant(hi + 1).sub(&key),
            )));
        }
    }
    Some(out)
}

/// Drop disjuncts that are syntactically subsumed by another disjunct
/// (their conjunct set is a superset). Quadratic; skipped above a size cap.
fn subsume_disjunction(formulas: std::collections::BTreeSet<PFormula>) -> Vec<PFormula> {
    const CAP: usize = 1500;
    let items: Vec<PFormula> = formulas.into_iter().collect();
    if items.len() > CAP {
        return items;
    }
    let as_set = |f: &PFormula| -> std::collections::BTreeSet<PFormula> {
        match f {
            PFormula::And(fs) => fs.iter().cloned().collect(),
            other => std::iter::once(other.clone()).collect(),
        }
    };
    let sets: Vec<std::collections::BTreeSet<PFormula>> = items.iter().map(&as_set).collect();
    let mut keep = vec![true; items.len()];
    for i in 0..items.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..items.len() {
            if i == j || !keep[j] {
                continue;
            }
            // If sets[i] ⊆ sets[j], disjunct j is implied by i — drop j.
            if sets[i].len() < sets[j].len() && sets[i].is_subset(&sets[j]) {
                keep[j] = false;
            }
        }
    }
    items
        .into_iter()
        .zip(keep)
        .filter_map(|(f, k)| k.then_some(f))
        .collect()
}

/// A literal: an atom with a sign. After normalization only divisibility
/// atoms can be negative.
type PLit = (bool, PAtom);

/// A DNF piece: either an `x`-literal or an opaque `x`-free subformula
/// (left unexpanded to keep the DNF from exploding).
#[derive(Clone)]
enum Piece {
    Lit(PLit),
    Opaque(PFormula),
}

/// Whether a formula mentions the variable.
fn mentions(f: &PFormula, var: &str) -> bool {
    match f {
        PFormula::True | PFormula::False => false,
        PFormula::Atom(a) => a.mentions(var),
        PFormula::Not(g) => mentions(g, var),
        PFormula::And(gs) | PFormula::Or(gs) => gs.iter().any(|g| mentions(g, var)),
        PFormula::Exists(v, g) | PFormula::Forall(v, g) => v != var && mentions(g, var),
    }
}

/// Eliminate a single existential over a quantifier-free body.
pub fn eliminate_exists(var: &str, qf: &PFormula) -> PFormula {
    eliminate_exists_with(&Engine::sequential(), var, qf)
}

/// [`eliminate_exists`] through an explicit [`Engine`].
///
/// The whole call and each DNF conjunct are memoized on `(var, interned
/// formula id)`; nested Cooper rounds mass-produce structurally equal
/// subproblems, so both caches hit heavily. Conjuncts are eliminated in
/// parallel and merged back in their canonical (`BTreeSet`) order, so the
/// output never depends on thread scheduling.
pub fn eliminate_exists_with(engine: &Engine, var: &str, qf: &PFormula) -> PFormula {
    debug_assert!(qf.is_quantifier_free(), "eliminate_exists needs a QF body");
    if !mentions(qf, var) {
        return qf.clone();
    }
    let key = (var.to_string(), engine.intern(qf.clone()).id());
    engine.cached("cooper.exists", key, || {
        let conjuncts: Vec<Conjunct> = dnf_wrt(&pnnf(&psimplify(qf), true), var)
            .into_iter()
            .collect();
        PFormula::or(engine.parallel_map(&conjuncts, |conjunct| {
            let key = (var.to_string(), engine.intern(conjunct.clone()).id());
            engine.cached("cooper.conjunct", key, || {
                let (lits, opaque) = conjunct;
                let pieces: Vec<Piece> = lits
                    .iter()
                    .cloned()
                    .map(Piece::Lit)
                    .chain(opaque.iter().cloned().map(Piece::Opaque))
                    .collect();
                eliminate_conjunct(engine, var, pieces)
            })
        }))
    })
}

/// A canonical DNF conjunct: sorted deduplicated literals plus opaque
/// variable-free residues.
type Conjunct = (
    std::collections::BTreeSet<PLit>,
    std::collections::BTreeSet<PFormula>,
);

/// Semantically tighten a conjunct's literal set via the interval merge of
/// [`tighten_conjunction`]; `None` if contradictory.
fn tighten_lits(
    lits: std::collections::BTreeSet<PLit>,
) -> Option<std::collections::BTreeSet<PLit>> {
    let as_formulas: std::collections::BTreeSet<PFormula> = lits
        .into_iter()
        .map(|(sign, a)| {
            let f = PFormula::Atom(a);
            if sign {
                f
            } else {
                PFormula::not(f)
            }
        })
        .collect();
    let tight = tighten_conjunction(as_formulas)?;
    let mut out = std::collections::BTreeSet::new();
    for f in tight {
        match f {
            PFormula::Atom(a) => {
                if a.term().is_constant() {
                    if !a.eval_ground() {
                        return None;
                    }
                } else {
                    out.insert((true, a));
                }
            }
            PFormula::Not(inner) => match *inner {
                PFormula::Atom(a) => {
                    if a.term().is_constant() {
                        if a.eval_ground() {
                            return None;
                        }
                    } else {
                        out.insert((false, a));
                    }
                }
                _ => unreachable!("tighten only emits literals"),
            },
            PFormula::True => {}
            PFormula::False => return None,
            _ => unreachable!("tighten only emits literals"),
        }
    }
    Some(out)
}

/// Negation normal form for [`PFormula`]: `¬(0 < t) ↦ 0 < 1 − t`,
/// `¬(t = 0) ↦ 0 < t ∨ 0 < −t`, negated divisibilities stay literals.
fn pnnf(f: &PFormula, positive: bool) -> PFormula {
    match f {
        PFormula::True => {
            if positive {
                PFormula::True
            } else {
                PFormula::False
            }
        }
        PFormula::False => {
            if positive {
                PFormula::False
            } else {
                PFormula::True
            }
        }
        PFormula::Atom(a) => {
            if positive {
                PFormula::Atom(a.clone())
            } else {
                match a {
                    PAtom::Pos(t) => PFormula::Atom(PAtom::Pos(LinTerm::constant(1).sub(t))),
                    PAtom::Zero(t) => PFormula::or([
                        PFormula::Atom(PAtom::Pos(t.clone())),
                        PFormula::Atom(PAtom::Pos(t.scale(-1))),
                    ]),
                    PAtom::Div(..) => PFormula::Not(Box::new(PFormula::Atom(a.clone()))),
                }
            }
        }
        PFormula::Not(inner) => pnnf(inner, !positive),
        PFormula::And(fs) => {
            let parts = fs.iter().map(|g| pnnf(g, positive));
            if positive {
                PFormula::and(parts)
            } else {
                PFormula::or(parts)
            }
        }
        PFormula::Or(fs) => {
            let parts = fs.iter().map(|g| pnnf(g, positive));
            if positive {
                PFormula::or(parts)
            } else {
                PFormula::and(parts)
            }
        }
        PFormula::Exists(..) | PFormula::Forall(..) => {
            unreachable!("pnnf is only applied to quantifier-free formulas")
        }
    }
}

/// DNF of a QF formula in [`pnnf`] form **with respect to a variable**:
/// maximal subformulas not mentioning the variable stay opaque, so only
/// the part of the formula that actually constrains `var` is distributed.
/// Conjuncts are canonicalized, interval-tightened, and deduplicated
/// *during* the product — without this the product of k n-way
/// disjunctions materializes n^k conjuncts before any simplification.
fn dnf_wrt(f: &PFormula, var: &str) -> std::collections::BTreeSet<Conjunct> {
    use std::collections::BTreeSet;
    if !mentions(f, var) {
        let mut c: Conjunct = Default::default();
        c.1.insert(f.clone());
        return [c].into();
    }
    match f {
        PFormula::True => [Conjunct::default()].into(),
        PFormula::False => BTreeSet::new(),
        PFormula::Atom(a) => {
            let mut c = Conjunct::default();
            c.0.insert((true, a.clone()));
            [c].into()
        }
        PFormula::Not(inner) => match inner.as_ref() {
            PFormula::Atom(a @ PAtom::Div(..)) => {
                let mut c = Conjunct::default();
                c.0.insert((false, a.clone()));
                [c].into()
            }
            _ => unreachable!("pnnf leaves only negated divisibilities"),
        },
        PFormula::Or(fs) => fs.iter().flat_map(|g| dnf_wrt(g, var)).collect(),
        PFormula::And(fs) => {
            let mut acc: BTreeSet<Conjunct> = [Conjunct::default()].into();
            for g in fs {
                let gs = dnf_wrt(g, var);
                let mut next: BTreeSet<Conjunct> = BTreeSet::new();
                for (a_lits, a_opq) in &acc {
                    for (b_lits, b_opq) in &gs {
                        let merged: BTreeSet<PLit> = a_lits.union(b_lits).cloned().collect();
                        let Some(tightened) = tighten_lits(merged) else {
                            continue; // contradictory conjunct
                        };
                        let opaque: BTreeSet<PFormula> = a_opq.union(b_opq).cloned().collect();
                        next.insert((tightened, opaque));
                    }
                }
                acc = next;
            }
            acc
        }
        PFormula::Exists(..) | PFormula::Forall(..) => unreachable!("QF input"),
    }
}

/// The shape of an `x`-literal after scaling to coefficient ±1 on `y`.
enum YAtom {
    /// `b < y`.
    Lower(LinTerm),
    /// `y < u`.
    Upper(LinTerm),
    /// `y = e`.
    Eq(LinTerm),
    /// `d ∣ y + s` (with sign).
    Div(u64, LinTerm, bool),
}

fn lcm(a: i128, b: i128) -> i128 {
    fn gcd(a: i128, b: i128) -> i128 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    (a / gcd(a, b)) * b
}

fn eliminate_conjunct(engine: &Engine, var: &str, pieces: Vec<Piece>) -> PFormula {
    let mut x_lits: Vec<PLit> = Vec::new();
    let mut residue: Vec<PFormula> = Vec::new();
    for p in pieces {
        match p {
            Piece::Opaque(f) => residue.push(f),
            Piece::Lit((sign, a)) => {
                if a.mentions(var) {
                    x_lits.push((sign, a));
                } else {
                    let atom = PFormula::Atom(a);
                    residue.push(if sign { atom } else { PFormula::not(atom) });
                }
            }
        }
    }
    let residue_formula = PFormula::and(residue);
    if x_lits.is_empty() {
        // ∃x ⊤ over ℤ is ⊤.
        return residue_formula;
    }

    // δ = lcm of |coefficients of x|.
    let delta = x_lits
        .iter()
        .map(|(_, a)| a.term().coeff(var).abs())
        .fold(1i128, lcm);

    // Scale every literal to the y-representation (y = δ·x).
    let mut y_atoms: Vec<YAtom> = Vec::with_capacity(x_lits.len() + 1);
    for (sign, a) in &x_lits {
        let c = a.term().coeff(var);
        let k = delta / c.abs();
        let rest = a.term().without(var).scale(k);
        match a {
            PAtom::Pos(_) => {
                debug_assert!(*sign, "pnnf removed negated inequalities");
                if c > 0 {
                    // 0 < y + rest  ⟺  −rest < y.
                    y_atoms.push(YAtom::Lower(rest.scale(-1)));
                } else {
                    // 0 < −y + rest ⟺ y < rest.
                    y_atoms.push(YAtom::Upper(rest));
                }
            }
            PAtom::Zero(_) => {
                debug_assert!(*sign, "pnnf removed negated equalities");
                if c > 0 {
                    // y + rest = 0 ⟺ y = −rest.
                    y_atoms.push(YAtom::Eq(rest.scale(-1)));
                } else {
                    y_atoms.push(YAtom::Eq(rest));
                }
            }
            PAtom::Div(d, _) => {
                let dd = (*d as i128 * k) as u64;
                if c > 0 {
                    y_atoms.push(YAtom::Div(dd, rest, *sign));
                } else {
                    // d' | −y + rest ⟺ d' | y − rest.
                    y_atoms.push(YAtom::Div(dd, rest.scale(-1), *sign));
                }
            }
        }
    }
    // y = δ·x demands δ | y.
    y_atoms.push(YAtom::Div(delta as u64, LinTerm::constant(0), true));

    // m = lcm of the divisors.
    let m = y_atoms
        .iter()
        .filter_map(|a| match a {
            YAtom::Div(d, ..) => Some(*d as i128),
            _ => None,
        })
        .fold(1i128, lcm);

    // B-set: lower bounds and e−1 for equations.
    let b_set: Vec<LinTerm> = y_atoms
        .iter()
        .filter_map(|a| match a {
            YAtom::Lower(b) => Some(b.clone()),
            YAtom::Eq(e) => Some(e.sub(&LinTerm::constant(1))),
            _ => None,
        })
        .collect();

    let has_floor = y_atoms
        .iter()
        .any(|a| matches!(a, YAtom::Lower(_) | YAtom::Eq(_)));

    let mut disjuncts: Vec<PFormula> = Vec::new();

    // Minus-infinity disjuncts: only divisibilities survive.
    if !has_floor {
        for j in 1..=m {
            let conj = y_atoms.iter().filter_map(|a| match a {
                YAtom::Div(d, s, sign) => {
                    let atom = PFormula::Atom(PAtom::Div(*d, s.add(&LinTerm::constant(j))));
                    Some(if *sign { atom } else { PFormula::not(atom) })
                }
                YAtom::Upper(_) => None, // true at −∞
                YAtom::Lower(_) | YAtom::Eq(_) => unreachable!("has_floor is false"),
            });
            disjuncts.push(psimplify(&PFormula::and(conj)));
        }
    }

    // Boundary disjuncts: y := b + j, one per (b, j) pair. The pairs are
    // independent, so they fan out across the engine's workers; the
    // results come back in cross-product order regardless of scheduling.
    let boundary: Vec<(&LinTerm, i128)> = b_set
        .iter()
        .flat_map(|b| (1..=m).map(move |j| (b, j)))
        .collect();
    disjuncts.extend(engine.parallel_map(&boundary, |(b, j)| {
        let y_val = b.add(&LinTerm::constant(*j));
        let conj = y_atoms.iter().map(|a| match a {
            YAtom::Lower(l) => PFormula::Atom(PAtom::Pos(y_val.sub(l))),
            YAtom::Upper(u) => PFormula::Atom(PAtom::Pos(u.sub(&y_val))),
            YAtom::Eq(e) => PFormula::Atom(PAtom::Zero(y_val.sub(e))),
            YAtom::Div(d, s, sign) => {
                let atom = PFormula::Atom(PAtom::Div(*d, y_val.add(s)));
                if *sign {
                    atom
                } else {
                    PFormula::not(atom)
                }
            }
        });
        psimplify(&PFormula::and(conj))
    }));

    PFormula::and([PFormula::or(disjuncts), residue_formula])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presburger::pformula::from_logic;
    use fq_logic::parse_formula;
    use std::collections::BTreeMap;

    /// Decide a sentence over ℤ.
    fn decide_int(s: &str) -> bool {
        let f = from_logic(&parse_formula(s).unwrap(), false).unwrap();
        eliminate(&f).eval_ground()
    }

    #[test]
    fn simple_existentials() {
        assert!(decide_int("exists x. x = 5"));
        assert!(decide_int("exists x. x < 0"));
        assert!(decide_int("exists x. 2 * x = 10"));
        assert!(!decide_int("exists x. 2 * x = 5"));
    }

    #[test]
    fn universals() {
        assert!(decide_int("forall x. exists y. x < y"));
        assert!(decide_int("forall x. exists y. y < x"));
        assert!(!decide_int("exists y. forall x. x < y"));
    }

    #[test]
    fn parity_partition() {
        assert!(decide_int("forall x. div(2, x, 0) | div(2, x, 1)"));
        assert!(!decide_int("forall x. div(2, x, 0)"));
        assert!(decide_int(
            "exists x. div(2, x, 0) & div(3, x, 0) & 0 < x & x < 7"
        ));
        assert!(!decide_int(
            "exists x. div(2, x, 0) & div(3, x, 0) & 0 < x & x < 6"
        ));
    }

    #[test]
    fn bounded_intervals() {
        assert!(decide_int("exists x. 3 < x & x < 5"));
        assert!(!decide_int("exists x. 3 < x & x < 4"));
        assert!(decide_int("forall x. 3 < x & x < 6 -> x = 4 | x = 5"));
    }

    #[test]
    fn linear_diophantine() {
        // 3x + 5y = 1 is solvable over ℤ.
        assert!(decide_int("exists x. exists y. 3 * x + 5 * y = 1"));
        // 2x + 4y = 7 is not.
        assert!(!decide_int("exists x. exists y. 2 * x + 4 * y = 7"));
    }

    #[test]
    fn negation_handling() {
        assert!(decide_int("exists x. !(x = 0) & !(x < 0) & x < 2"));
        assert!(decide_int("forall x. !(x < x)"));
    }

    #[test]
    fn alternating_quantifiers() {
        // Density fails on integers: there is no element between n and n+1.
        assert!(!decide_int(
            "forall x. forall y. x < y -> exists z. x < z & z < y"
        ));
        // But between n and n+2 there is.
        assert!(decide_int("forall x. exists z. x < z & z < x + 2"));
    }

    #[test]
    fn eliminated_formula_is_quantifier_free_and_equivalent() {
        let samples = [
            "exists x. y < x & x < z",
            "exists x. 2 * x = y",
            "exists x. x < y | div(3, x, z)",
            "forall x. x < y -> x < z",
        ];
        for s in samples {
            let f = from_logic(&parse_formula(s).unwrap(), false).unwrap();
            let elim = eliminate(&f);
            assert!(elim.is_quantifier_free(), "{s}");
            for y in -4i128..4 {
                for z in -4i128..4 {
                    let env: BTreeMap<String, i128> = [("y".into(), y), ("z".into(), z)].into();
                    // Reference: brute-force the quantifier over a window
                    // wide enough for these samples.
                    let brute = brute_force(&f, &env, -30, 30);
                    assert_eq!(elim.eval(&env), Some(brute), "sample `{s}` at y={y}, z={z}");
                }
            }
        }
    }

    /// Brute-force evaluation quantifying over [lo, hi] — only valid for
    /// formulas whose witnesses are near their coefficients, as in the
    /// test samples above.
    fn brute_force(f: &PFormula, env: &BTreeMap<String, i128>, lo: i128, hi: i128) -> bool {
        match f {
            PFormula::True => true,
            PFormula::False => false,
            PFormula::Atom(a) => a.eval(env).expect("bound"),
            PFormula::Not(g) => !brute_force(g, env, lo, hi),
            PFormula::And(gs) => gs.iter().all(|g| brute_force(g, env, lo, hi)),
            PFormula::Or(gs) => gs.iter().any(|g| brute_force(g, env, lo, hi)),
            PFormula::Exists(v, g) => (lo..=hi).any(|k| {
                let mut e = env.clone();
                e.insert(v.clone(), k);
                brute_force(g, &e, lo, hi)
            }),
            PFormula::Forall(v, g) => (lo..=hi).all(|k| {
                let mut e = env.clone();
                e.insert(v.clone(), k);
                brute_force(g, &e, lo, hi)
            }),
        }
    }
}
