//! Internal Presburger formula representation.
//!
//! Atoms are normalized to three shapes over [`LinTerm`]s:
//! `0 < t`, `t = 0`, and `d ∣ t` — the exact atom set Cooper's elimination
//! works with. Conversion from the surface syntax optionally *relativizes*
//! quantifiers to ℕ (`∃x φ ↦ ∃x (0 ≤ x ∧ φ)`), which is how the ℕ-domains
//! of Section 2 are decided by an integer procedure.

use super::linear::LinTerm;
use crate::domain::DomainError;
use fq_logic::transform::nnf;
use fq_logic::{Formula, Term};
use std::collections::BTreeMap;

/// A normalized Presburger atom.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PAtom {
    /// `0 < t`.
    Pos(LinTerm),
    /// `t = 0`.
    Zero(LinTerm),
    /// `d ∣ t` with `d ≥ 1`.
    Div(u64, LinTerm),
}

impl PAtom {
    /// Evaluate a ground atom.
    ///
    /// # Panics
    ///
    /// Panics if the atom mentions variables.
    pub fn eval_ground(&self) -> bool {
        match self {
            PAtom::Pos(t) => {
                assert!(t.is_constant(), "eval_ground on non-ground atom");
                t.constant > 0
            }
            PAtom::Zero(t) => {
                assert!(t.is_constant(), "eval_ground on non-ground atom");
                t.constant == 0
            }
            PAtom::Div(d, t) => {
                assert!(t.is_constant(), "eval_ground on non-ground atom");
                t.constant.rem_euclid(*d as i128) == 0
            }
        }
    }

    /// Evaluate under an integer assignment; `None` if a variable is
    /// unbound.
    pub fn eval(&self, env: &BTreeMap<String, i128>) -> Option<bool> {
        match self {
            PAtom::Pos(t) => Some(t.eval(env)? > 0),
            PAtom::Zero(t) => Some(t.eval(env)? == 0),
            PAtom::Div(d, t) => Some(t.eval(env)?.rem_euclid(*d as i128) == 0),
        }
    }

    /// Whether the atom mentions the variable.
    pub fn mentions(&self, v: &str) -> bool {
        self.term().mentions(v)
    }

    /// The underlying linear term.
    pub fn term(&self) -> &LinTerm {
        match self {
            PAtom::Pos(t) | PAtom::Zero(t) | PAtom::Div(_, t) => t,
        }
    }

    /// Substitute a linear term for a variable.
    pub fn subst(&self, v: &str, r: &LinTerm) -> PAtom {
        match self {
            PAtom::Pos(t) => PAtom::Pos(t.subst(v, r)),
            PAtom::Zero(t) => PAtom::Zero(t.subst(v, r)),
            PAtom::Div(d, t) => PAtom::Div(*d, t.subst(v, r)),
        }
    }

    /// Render back into surface syntax.
    pub fn to_logic(&self) -> Formula {
        match self {
            PAtom::Pos(t) => {
                let (l, r) = t.to_term_sides();
                // 0 < l - r  ⟺  r < l
                Formula::lt(r, l)
            }
            PAtom::Zero(t) => {
                let (l, r) = t.to_term_sides();
                Formula::eq(l, r)
            }
            PAtom::Div(d, t) => {
                let (l, r) = t.to_term_sides();
                // d | l - r, rendered as the predicate div(d, l, r).
                Formula::pred("div", vec![Term::Nat(*d), l, r])
            }
        }
    }
}

/// A Presburger formula. `Not` is unrestricted here; the Cooper module
/// normalizes negations away (keeping only negated divisibility literals).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PFormula {
    True,
    False,
    Atom(PAtom),
    Not(Box<PFormula>),
    And(Vec<PFormula>),
    Or(Vec<PFormula>),
    Exists(String, Box<PFormula>),
    Forall(String, Box<PFormula>),
}

impl PFormula {
    /// Smart conjunction.
    pub fn and(fs: impl IntoIterator<Item = PFormula>) -> PFormula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PFormula::True => {}
                PFormula::False => return PFormula::False,
                PFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PFormula::True,
            1 => out.pop().expect("len checked"),
            _ => PFormula::And(out),
        }
    }

    /// Smart disjunction.
    pub fn or(fs: impl IntoIterator<Item = PFormula>) -> PFormula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PFormula::False => {}
                PFormula::True => return PFormula::True,
                PFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PFormula::False,
            1 => out.pop().expect("len checked"),
            _ => PFormula::Or(out),
        }
    }

    /// Smart negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PFormula) -> PFormula {
        match f {
            PFormula::True => PFormula::False,
            PFormula::False => PFormula::True,
            PFormula::Not(inner) => *inner,
            other => PFormula::Not(Box::new(other)),
        }
    }

    /// Whether the formula contains quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            PFormula::True | PFormula::False | PFormula::Atom(_) => true,
            PFormula::Not(f) => f.is_quantifier_free(),
            PFormula::And(fs) | PFormula::Or(fs) => fs.iter().all(|f| f.is_quantifier_free()),
            PFormula::Exists(..) | PFormula::Forall(..) => false,
        }
    }

    /// Evaluate under an integer assignment (quantifier-free only).
    pub fn eval(&self, env: &BTreeMap<String, i128>) -> Option<bool> {
        match self {
            PFormula::True => Some(true),
            PFormula::False => Some(false),
            PFormula::Atom(a) => a.eval(env),
            PFormula::Not(f) => f.eval(env).map(|b| !b),
            PFormula::And(fs) => {
                for f in fs {
                    if !f.eval(env)? {
                        return Some(false);
                    }
                }
                Some(true)
            }
            PFormula::Or(fs) => {
                for f in fs {
                    if f.eval(env)? {
                        return Some(true);
                    }
                }
                Some(false)
            }
            PFormula::Exists(..) | PFormula::Forall(..) => None,
        }
    }

    /// Evaluate a ground quantifier-free formula.
    pub fn eval_ground(&self) -> bool {
        self.eval(&BTreeMap::new())
            .expect("eval_ground requires a ground quantifier-free formula")
    }

    /// Render back into surface syntax.
    pub fn to_logic(&self) -> Formula {
        match self {
            PFormula::True => Formula::True,
            PFormula::False => Formula::False,
            PFormula::Atom(a) => a.to_logic(),
            PFormula::Not(f) => Formula::not(f.to_logic()),
            PFormula::And(fs) => Formula::and(fs.iter().map(|f| f.to_logic())),
            PFormula::Or(fs) => Formula::or(fs.iter().map(|f| f.to_logic())),
            PFormula::Exists(v, f) => Formula::exists(v.clone(), f.to_logic()),
            PFormula::Forall(v, f) => Formula::forall(v.clone(), f.to_logic()),
        }
    }
}

/// Convert a surface formula over the Presburger signature into a
/// [`PFormula`]. When `relativize_to_nat` is set, every quantifier is
/// guarded by `0 ≤ x`, interpreting the formula over ℕ inside the integer
/// procedure.
pub fn from_logic(f: &Formula, relativize_to_nat: bool) -> Result<PFormula, DomainError> {
    // NNF first so only atoms are negated; conversion keeps those negations.
    convert(&nnf(f), relativize_to_nat)
}

fn convert(f: &Formula, rel: bool) -> Result<PFormula, DomainError> {
    match f {
        Formula::True => Ok(PFormula::True),
        Formula::False => Ok(PFormula::False),
        Formula::Eq(a, b) => {
            let la = lin(a)?;
            let lb = lin(b)?;
            Ok(PFormula::Atom(PAtom::Zero(la.sub(&lb))))
        }
        Formula::Pred(name, args) => convert_pred(name, args),
        Formula::Not(inner) => Ok(PFormula::not(convert(inner, rel)?)),
        Formula::And(fs) => {
            let parts: Result<Vec<_>, _> = fs.iter().map(|g| convert(g, rel)).collect();
            Ok(PFormula::and(parts?))
        }
        Formula::Or(fs) => {
            let parts: Result<Vec<_>, _> = fs.iter().map(|g| convert(g, rel)).collect();
            Ok(PFormula::or(parts?))
        }
        Formula::Implies(a, b) => Ok(PFormula::or([
            PFormula::not(convert(a, rel)?),
            convert(b, rel)?,
        ])),
        Formula::Iff(a, b) => {
            let ca = convert(a, rel)?;
            let cb = convert(b, rel)?;
            Ok(PFormula::or([
                PFormula::and([ca.clone(), cb.clone()]),
                PFormula::and([PFormula::not(ca), PFormula::not(cb)]),
            ]))
        }
        Formula::Exists(v, body) => {
            let inner = convert(body, rel)?;
            let guarded = if rel {
                PFormula::and([nonneg(v), inner])
            } else {
                inner
            };
            Ok(PFormula::Exists(v.clone(), Box::new(guarded)))
        }
        Formula::Forall(v, body) => {
            let inner = convert(body, rel)?;
            let guarded = if rel {
                PFormula::or([PFormula::not(nonneg(v)), inner])
            } else {
                inner
            };
            Ok(PFormula::Forall(v.clone(), Box::new(guarded)))
        }
    }
}

/// `0 ≤ v`, i.e. `0 < v + 1`.
fn nonneg(v: &str) -> PFormula {
    PFormula::Atom(PAtom::Pos(LinTerm::var(v).add(&LinTerm::constant(1))))
}

fn convert_pred(name: &str, args: &[Term]) -> Result<PFormula, DomainError> {
    match (name, args) {
        ("<", [a, b]) => Ok(PFormula::Atom(PAtom::Pos(lin(b)?.sub(&lin(a)?)))),
        ("<=", [a, b]) => Ok(PFormula::Atom(PAtom::Pos(
            lin(b)?.sub(&lin(a)?).add(&LinTerm::constant(1)),
        ))),
        (">", [a, b]) => Ok(PFormula::Atom(PAtom::Pos(lin(a)?.sub(&lin(b)?)))),
        (">=", [a, b]) => Ok(PFormula::Atom(PAtom::Pos(
            lin(a)?.sub(&lin(b)?).add(&LinTerm::constant(1)),
        ))),
        ("div", [Term::Nat(d), a, b]) if *d >= 1 => {
            Ok(PFormula::Atom(PAtom::Div(*d, lin(a)?.sub(&lin(b)?))))
        }
        _ => Err(DomainError::UnsupportedSymbol {
            symbol: format!("{name}/{}", args.len()),
        }),
    }
}

fn lin(t: &Term) -> Result<LinTerm, DomainError> {
    LinTerm::from_term(t).ok_or_else(|| DomainError::UnsupportedSymbol {
        symbol: t.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn conv(s: &str) -> PFormula {
        from_logic(&parse_formula(s).unwrap(), false).unwrap()
    }

    #[test]
    fn converts_comparisons() {
        let f = conv("x < y");
        match f {
            PFormula::Atom(PAtom::Pos(t)) => {
                assert_eq!(t.coeff("y"), 1);
                assert_eq!(t.coeff("x"), -1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn le_is_lt_plus_one() {
        match conv("x <= y") {
            PFormula::Atom(PAtom::Pos(t)) => assert_eq!(t.constant, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn equality_becomes_zero_atom() {
        match conv("x + 1 = y") {
            PFormula::Atom(PAtom::Zero(t)) => {
                assert_eq!(t.coeff("x"), 1);
                assert_eq!(t.coeff("y"), -1);
                assert_eq!(t.constant, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn relativization_guards_quantifiers() {
        let f = from_logic(&parse_formula("exists x. x < 0").unwrap(), true).unwrap();
        match f {
            PFormula::Exists(_, body) => match *body {
                PFormula::And(parts) => assert_eq!(parts.len(), 2),
                other => panic!("expected guard conjunction, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ground_evaluation() {
        assert!(conv("1 < 2").eval_ground());
        assert!(!conv("2 < 1").eval_ground());
        assert!(conv("div(3, 6, 0)").eval_ground());
        assert!(!conv("div(3, 7, 0)").eval_ground());
    }

    #[test]
    fn eval_under_assignment() {
        let f = conv("x < y & div(2, x, 0)");
        let env: BTreeMap<String, i128> = [("x".into(), 2), ("y".into(), 5)].into();
        assert_eq!(f.eval(&env), Some(true));
        let env2: BTreeMap<String, i128> = [("x".into(), 3), ("y".into(), 5)].into();
        assert_eq!(f.eval(&env2), Some(false));
    }

    #[test]
    fn negative_divisibility_eval() {
        // -4 ≡ 0 (mod 2), -3 ≢ 0 (mod 2) with euclidean remainder.
        let even = PAtom::Div(2, LinTerm::constant(-4));
        assert!(even.eval_ground());
        let odd = PAtom::Div(2, LinTerm::constant(-3));
        assert!(!odd.eval_ground());
    }

    #[test]
    fn rejects_multiplication_of_variables() {
        assert!(from_logic(&parse_formula("x * y = 1").unwrap(), false).is_err());
    }

    #[test]
    fn rejects_unknown_predicate() {
        assert!(from_logic(&parse_formula("P(x)").unwrap(), false).is_err());
    }

    #[test]
    fn to_logic_round_trip_semantics() {
        // Convert, render back, convert again: same evaluation.
        let f = conv("x < y | x = y + 2 | div(3, x, 1)");
        let back = from_logic(&f.to_logic(), false).unwrap();
        for x in -3i128..3 {
            for y in -3i128..3 {
                let env: BTreeMap<String, i128> = [("x".into(), x), ("y".into(), y)].into();
                assert_eq!(f.eval(&env), back.eval(&env), "x={x}, y={y}");
            }
        }
    }
}
