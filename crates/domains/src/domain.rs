//! The domain abstraction.
//!
//! Per Section 1.1 of the paper, we only consider **recursive** domains —
//! every domain function and predicate is computable, and the elements can
//! be effectively enumerated — and we single out domains whose first-order
//! theory is **decidable**, because "if the domain theory is not decidable,
//! then the answers, whether finite or infinite, are not computable".

use fq_engine::Engine;
use fq_logic::{Formula, LogicError, Term};
use std::fmt::{Debug, Display};

/// Errors produced by domain decision procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DomainError {
    /// The formula uses a symbol the domain does not interpret.
    UnsupportedSymbol { symbol: String },
    /// A sentence was required but the formula has free variables.
    NotASentence { free: Vec<String> },
    /// The formula mixes element kinds the domain cannot compare.
    SortMismatch { detail: String },
    /// A resource budget was exhausted (used by semi-decision helpers).
    BudgetExhausted { detail: String },
    /// An underlying logic error.
    Logic(LogicError),
}

impl Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::UnsupportedSymbol { symbol } => {
                write!(
                    f,
                    "symbol `{symbol}` is not part of this domain's signature"
                )
            }
            DomainError::NotASentence { free } => {
                write!(f, "expected a sentence, found free variables {free:?}")
            }
            DomainError::SortMismatch { detail } => write!(f, "sort mismatch: {detail}"),
            DomainError::BudgetExhausted { detail } => write!(f, "budget exhausted: {detail}"),
            DomainError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DomainError {}

impl From<LogicError> for DomainError {
    fn from(e: LogicError) -> Self {
        DomainError::Logic(e)
    }
}

/// A recursive domain: a countable set of elements with computable
/// functions and predicates.
pub trait Domain {
    /// The element type.
    type Elem: Clone + Eq + Ord + Debug + Display;

    /// Human-readable domain name (e.g. `⟨N, <⟩`).
    fn name(&self) -> String;

    /// The first `n` elements of the domain's canonical enumeration
    /// a₁, a₂, … (used by the Section 1.1 query-answering algorithm).
    fn enumerate(&self, n: usize) -> Vec<Self::Elem>;

    /// The ground term denoting an element ("we have constants for all the
    /// elements of the domain").
    fn elem_term(&self, e: &Self::Elem) -> Term;

    /// Parse a ground term back into an element, if it denotes one.
    fn parse_elem(&self, t: &Term) -> Option<Self::Elem>;

    /// Domain-specific candidate elements likely to answer a query —
    /// a *reordering hint* for the Section 1.1 enumerate-and-ask loop.
    /// Completeness never depends on this: the canonical enumeration is
    /// always scanned afterwards.
    fn guided_elements(&self, _query: &Formula) -> Vec<Self::Elem> {
        Vec::new()
    }
}

/// A domain whose first-order theory is decidable.
pub trait DecidableTheory: Domain {
    /// Decide the truth of a pure-domain sentence.
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError>;

    /// Decide through a shared [`Engine`], so callers can fan decision
    /// work across cores and reuse memoized subproblems between
    /// sentences. The default ignores the engine; theories whose decision
    /// procedure is engine-aware (Presburger, the trace domain) override
    /// it. Results are always identical to [`DecidableTheory::decide`].
    fn decide_with(&self, sentence: &Formula, engine: &Engine) -> Result<bool, DomainError> {
        let _ = engine;
        self.decide(sentence)
    }

    /// Decide equivalence of two formulas with the same free variables by
    /// deciding the universally closed bi-implication.
    fn equivalent(&self, a: &Formula, b: &Formula) -> Result<bool, DomainError> {
        self.equivalent_with(a, b, &Engine::sequential())
    }

    /// [`DecidableTheory::equivalent`] through a shared [`Engine`].
    fn equivalent_with(
        &self,
        a: &Formula,
        b: &Formula,
        engine: &Engine,
    ) -> Result<bool, DomainError> {
        let mut free: Vec<String> = a.free_vars().into_iter().collect();
        for v in b.free_vars() {
            if !free.contains(&v) {
                free.push(v);
            }
        }
        let closed = Formula::forall_many(free, Formula::iff(a.clone(), b.clone()));
        self.decide_with(&closed, engine)
    }
}

/// Check that a formula is a sentence, returning the free variables
/// otherwise. Shared by the `decide` implementations.
pub fn require_sentence(f: &Formula) -> Result<(), DomainError> {
    let free = f.free_vars();
    if free.is_empty() {
        Ok(())
    } else {
        Err(DomainError::NotASentence {
            free: free.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    #[test]
    fn require_sentence_accepts_closed() {
        let f = parse_formula("exists x. x = x").unwrap();
        assert!(require_sentence(&f).is_ok());
    }

    #[test]
    fn require_sentence_rejects_open() {
        let f = parse_formula("x = y").unwrap();
        match require_sentence(&f) {
            Err(DomainError::NotASentence { free }) => {
                assert_eq!(free, vec!["x".to_string(), "y".to_string()]);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_display() {
        let e = DomainError::UnsupportedSymbol {
            symbol: "frob".into(),
        };
        assert!(e.to_string().contains("frob"));
    }
}
