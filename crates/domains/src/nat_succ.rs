//! The domain N′ = ⟨ℕ, ′, =⟩ of Section 2.2 — successor, **no order**.
//!
//! "The reason we consider it is to make a technical point, that we do not
//! necessarily need < for an effective syntax." The paper sketches the
//! quantifier-elimination procedure (after Mal'cev): every formula is
//! equivalent to a quantifier-free one over atoms `x⁽ⁿ⁾ = y`, `x = y⁽ⁿ⁾`
//! and their negations, where `t⁽ⁿ⁾` is `t` followed by `n` primes.
//!
//! Elimination of `∃x` from a conjunction of literals:
//!
//! * `x⁽ᵃ⁾ = x⁽ᵇ⁾` resolves to `a = b`;
//! * a positive equality `x⁽ᵃ⁾ = t` is solved for `x`: substitute
//!   `x = t⁽ᵇ⁻ᵃ⁾`, and when `b < a` "additionally add the conjunction
//!   `y ≠ 0 ∧ … ∧ y ≠ (a−b−1)`" (the paper's guard making `y⁽ᵇ⁻ᵃ⁾`
//!   defined);
//! * a conjunction of inequalities only is always satisfiable (each
//!   inequality excludes at most one value of `x` from an infinite set).
//!
//! The same analysis powers the Theorem 2.6 relative-safety decision: a
//! quantifier-free formula has a finite solution set iff every satisfiable
//! DNF conjunct pins every free variable to a constant through a chain of
//! equalities (see [`NatSucc::solution_set_finite`]).

use crate::domain::{require_sentence, DecidableTheory, Domain, DomainError};
use fq_logic::transform::{
    dnf_conjunctions, dnf_conjunctions_wrt, nnf, simplify, DnfPiece, Literal,
};
use fq_logic::{Formula, Term};
use std::collections::BTreeMap;

/// The domain ⟨ℕ, ′, =⟩.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NatSucc;

/// The base of a successor term.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SBase {
    Var(String),
    Num(u64),
}

/// A successor term `base⁽ᵒᶠᶠˢᵉᵗ⁾`; constants are normalized so that a
/// numeric base always has offset 0.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct STerm {
    pub base: SBase,
    pub offset: u64,
}

impl STerm {
    /// Parse an `fq-logic` term over the N′ signature.
    pub fn from_term(t: &Term) -> Option<STerm> {
        match t {
            Term::Var(v) => Some(STerm {
                base: SBase::Var(v.to_string()),
                offset: 0,
            }),
            Term::Nat(n) => Some(STerm {
                base: SBase::Num(*n),
                offset: 0,
            }),
            Term::App(f, args) if f == "succ" && args.len() == 1 => {
                let inner = STerm::from_term(&args[0])?;
                Some(inner.shift(1))
            }
            _ => None,
        }
    }

    /// Add `n` to the offset, folding constants.
    pub fn shift(&self, n: u64) -> STerm {
        match &self.base {
            SBase::Num(k) => STerm {
                base: SBase::Num(k + n + self.offset),
                offset: 0,
            },
            SBase::Var(_) => STerm {
                base: self.base.clone(),
                offset: self.offset + n,
            },
        }
    }

    /// Render back as an `fq-logic` term.
    pub fn to_term(&self) -> Term {
        let base = match &self.base {
            SBase::Var(v) => Term::var(v.clone()),
            SBase::Num(n) => Term::Nat(*n),
        };
        base.succ_n(self.offset)
    }

    /// The variable, if the base is one.
    pub fn var(&self) -> Option<&str> {
        match &self.base {
            SBase::Var(v) => Some(v),
            SBase::Num(_) => None,
        }
    }

    /// Ground value, if constant.
    pub fn value(&self) -> Option<u64> {
        match &self.base {
            SBase::Num(n) => Some(n + self.offset),
            SBase::Var(_) => None,
        }
    }
}

/// A parsed equality literal `lhs ⋈ rhs`.
#[derive(Clone, Debug)]
struct SLit {
    positive: bool,
    lhs: STerm,
    rhs: STerm,
}

fn parse_literal(l: &Literal) -> Result<SLit, DomainError> {
    match &l.atom {
        Formula::Eq(a, b) => {
            let lhs = STerm::from_term(a).ok_or_else(|| DomainError::UnsupportedSymbol {
                symbol: a.to_string(),
            })?;
            let rhs = STerm::from_term(b).ok_or_else(|| DomainError::UnsupportedSymbol {
                symbol: b.to_string(),
            })?;
            Ok(SLit {
                positive: l.positive,
                lhs,
                rhs,
            })
        }
        other => Err(DomainError::UnsupportedSymbol {
            symbol: other.to_string(),
        }),
    }
}

impl NatSucc {
    /// Compute a quantifier-free equivalent of a formula over the N′
    /// signature. Quantifiers are eliminated innermost-first, keeping
    /// variable-free subformulas opaque and simplifying between rounds.
    pub fn quantifier_eliminate(&self, f: &Formula) -> Result<Formula, DomainError> {
        Ok(simplify(&self.eliminate_rec(f)?))
    }

    fn eliminate_rec(&self, f: &Formula) -> Result<Formula, DomainError> {
        Ok(match f {
            Formula::True | Formula::False | Formula::Pred(..) | Formula::Eq(..) => f.clone(),
            Formula::Not(g) => Formula::not(self.eliminate_rec(g)?),
            Formula::And(gs) => {
                let parts: Result<Vec<_>, _> = gs.iter().map(|g| self.eliminate_rec(g)).collect();
                Formula::and(parts?)
            }
            Formula::Or(gs) => {
                let parts: Result<Vec<_>, _> = gs.iter().map(|g| self.eliminate_rec(g)).collect();
                Formula::or(parts?)
            }
            Formula::Implies(a, b) => {
                Formula::or([Formula::not(self.eliminate_rec(a)?), self.eliminate_rec(b)?])
            }
            Formula::Iff(a, b) => {
                let ea = self.eliminate_rec(a)?;
                let eb = self.eliminate_rec(b)?;
                Formula::or([
                    Formula::and([ea.clone(), eb.clone()]),
                    Formula::and([Formula::not(ea), Formula::not(eb)]),
                ])
            }
            Formula::Exists(v, g) => {
                simplify(&self.eliminate_exists(v, &simplify(&self.eliminate_rec(g)?))?)
            }
            Formula::Forall(v, g) => simplify(&Formula::not(
                self.eliminate_exists(v, &Formula::not(self.eliminate_rec(g)?))?,
            )),
        })
    }

    /// Eliminate one existential over a quantifier-free body.
    fn eliminate_exists(&self, var: &str, body: &Formula) -> Result<Formula, DomainError> {
        if !body.free_vars().contains(var) {
            return Ok(body.clone());
        }
        let mut disjuncts = Vec::new();
        for pieces in dnf_conjunctions_wrt(body, var) {
            let mut residue: Vec<Formula> = Vec::new();
            let mut literals: Vec<Literal> = Vec::new();
            for p in pieces {
                match p {
                    DnfPiece::Opaque(f) => residue.push(f),
                    DnfPiece::Lit(l) => literals.push(l),
                }
            }
            let eliminated = self.eliminate_conjunct(var, &literals)?;
            disjuncts.push(Formula::and(std::iter::once(eliminated).chain(residue)));
        }
        Ok(Formula::or(disjuncts))
    }

    fn eliminate_conjunct(&self, var: &str, literals: &[Literal]) -> Result<Formula, DomainError> {
        let mut residue: Vec<Formula> = Vec::new();
        let mut x_lits: Vec<SLit> = Vec::new();
        for l in literals {
            let sl = parse_literal(l)?;
            let mentions = sl.lhs.var() == Some(var) || sl.rhs.var() == Some(var);
            if mentions {
                x_lits.push(sl);
            } else {
                residue.push(l.to_formula());
            }
        }

        // Resolve literals where BOTH sides are x-terms: x⁽ᵃ⁾ ⋈ x⁽ᵇ⁾.
        let mut remaining: Vec<SLit> = Vec::new();
        for sl in x_lits {
            if sl.lhs.var() == Some(var) && sl.rhs.var() == Some(var) {
                let holds = sl.lhs.offset == sl.rhs.offset;
                if holds != sl.positive {
                    // x⁽ᵃ⁾ = x⁽ᵇ⁾ with a ≠ b (or x ≠ x): conjunct is false.
                    return Ok(Formula::False);
                }
                // Trivially true literal: drop.
            } else if sl.lhs.var() == Some(var) {
                remaining.push(sl);
            } else {
                // Orient so the x-term is on the left.
                remaining.push(SLit {
                    positive: sl.positive,
                    lhs: sl.rhs,
                    rhs: sl.lhs,
                });
            }
        }

        // A positive equality solves for x.
        if let Some(pos) = remaining.iter().position(|l| l.positive) {
            let eq = remaining.remove(pos);
            let a = eq.lhs.offset; // x⁽ᵃ⁾ = rhs
            let mut guards: Vec<Formula> = Vec::new();
            // Solve x + a = rhs for x, when the solution is representable.
            let solved: Option<STerm> = match eq.rhs.value() {
                Some(v) => {
                    if v < a {
                        return Ok(Formula::False);
                    }
                    Some(STerm {
                        base: SBase::Num(v - a),
                        offset: 0,
                    })
                }
                None => {
                    let b = eq.rhs.offset;
                    if b >= a {
                        // x = y⁽ᵇ⁻ᵃ⁾.
                        Some(STerm {
                            base: eq.rhs.base.clone(),
                            offset: b - a,
                        })
                    } else {
                        // x = y − (a−b): guard y ∉ {0, …, a−b−1} (the
                        // paper's "add the conjunction y ≠ 0 ∧ … ∧
                        // y ≠ (n−1)").
                        for k in 0..(a - b) {
                            guards.push(Formula::neq(
                                STerm {
                                    base: eq.rhs.base.clone(),
                                    offset: 0,
                                }
                                .to_term(),
                                Term::Nat(k),
                            ));
                        }
                        None
                    }
                }
            };
            // Substitute into the remaining literals.
            for l in &remaining {
                let c = l.lhs.offset; // x⁽ᶜ⁾ ⋈ l.rhs
                let atom = match &solved {
                    Some(s) => eval_or_atom(&s.shift(c), &l.rhs),
                    None => {
                        // x = y − (a−b): x⁽ᶜ⁾ ⋈ s, i.e. y + c − (a−b) ⋈ s;
                        // shift both sides by a−b ≥ 0 to stay in ℕ:
                        // y⁽ᶜ⁾ ⋈ s⁽ᵃ⁻ᵇ⁾.
                        eval_or_atom(
                            &STerm {
                                base: eq.rhs.base.clone(),
                                offset: c,
                            },
                            &l.rhs.shift(a - eq.rhs.offset),
                        )
                    }
                };
                guards.push(if l.positive { atom } else { Formula::not(atom) });
            }
            residue.extend(guards);
            return Ok(Formula::and(residue));
        }

        // Only inequalities constrain x: always satisfiable over infinite ℕ.
        Ok(Formula::and(residue))
    }

    /// Decide whether a **quantifier-free** formula has a finite solution
    /// set over the given free variables — Theorem 2.6's core step
    /// ("given a quantifier-free formula, it is easy to decide upon the
    /// finiteness of the answer it yields").
    pub fn solution_set_finite(&self, qf: &Formula, vars: &[String]) -> Result<bool, DomainError> {
        for conjunct in dnf_conjunctions(&nnf(qf)) {
            let lits: Result<Vec<SLit>, _> = conjunct.iter().map(parse_literal).collect();
            let lits = lits?;
            if let Some(pinned) = analyze_conjunct(&lits) {
                // Satisfiable conjunct: finite only if every free variable
                // is pinned to a constant.
                for v in vars {
                    if !pinned.get(v.as_str()).copied().unwrap_or(false) {
                        return Ok(false);
                    }
                }
            }
        }
        Ok(true)
    }
}

/// Build the equality atom between two successor terms, folding ground
/// cases.
fn eval_or_atom(lhs: &STerm, rhs: &STerm) -> Formula {
    match (lhs.value(), rhs.value()) {
        (Some(a), Some(b)) => {
            if a == b {
                Formula::True
            } else {
                Formula::False
            }
        }
        _ => {
            if lhs == rhs {
                Formula::True
            } else if lhs.var().is_some() && lhs.var() == rhs.var() {
                // Same variable, different offsets: never equal.
                Formula::False
            } else {
                Formula::eq(lhs.to_term(), rhs.to_term())
            }
        }
    }
}

/// Analyze a conjunction of successor literals.
///
/// Returns `None` if the conjunct is unsatisfiable over ℕ; otherwise a map
/// from variable to "is pinned to a constant value".
#[allow(clippy::needless_range_loop)]
fn analyze_conjunct(lits: &[SLit]) -> Option<BTreeMap<String, bool>> {
    // Union-find with offsets: value(node) = value(parent) + delta.
    struct Uf {
        parent: Vec<usize>,
        delta: Vec<i128>,
    }
    impl Uf {
        fn find(&mut self, i: usize) -> (usize, i128) {
            if self.parent[i] == i {
                return (i, 0);
            }
            let (root, d) = self.find(self.parent[i]);
            self.parent[i] = root;
            self.delta[i] += d;
            (root, self.delta[i])
        }
    }

    let mut index: BTreeMap<SBase, usize> = BTreeMap::new();
    let mut bases: Vec<SBase> = Vec::new();
    let mut uf = Uf {
        parent: Vec::new(),
        delta: Vec::new(),
    };
    let mut intern = |b: &SBase, uf: &mut Uf, bases: &mut Vec<SBase>| -> usize {
        *index.entry(b.clone()).or_insert_with(|| {
            let i = uf.parent.len();
            uf.parent.push(i);
            uf.delta.push(0);
            bases.push(b.clone());
            i
        })
    };

    // Merge positive equalities: value(lhs.base) + lo = value(rhs.base) + ro.
    for l in lits.iter().filter(|l| l.positive) {
        let li = intern(&l.lhs.base, &mut uf, &mut bases);
        let ri = intern(&l.rhs.base, &mut uf, &mut bases);
        let (lr, ld) = uf.find(li);
        let (rr, rd) = uf.find(ri);
        let lo = l.lhs.offset as i128;
        let ro = l.rhs.offset as i128;
        if lr == rr {
            if ld + lo != rd + ro {
                return None;
            }
        } else {
            // value(lr) = value(rr) + (rd + ro − ld − lo).
            uf.parent[lr] = rr;
            uf.delta[lr] = rd + ro - ld - lo;
        }
    }

    // Pin classes containing constants; check consistency and ℕ-feasibility.
    let mut root_value: BTreeMap<usize, i128> = BTreeMap::new();
    for i in 0..bases.len() {
        if let SBase::Num(k) = bases[i] {
            let (root, d) = uf.find(i);
            let rv = k as i128 - d;
            match root_value.get(&root) {
                Some(prev) if *prev != rv => return None,
                _ => {
                    root_value.insert(root, rv);
                }
            }
        }
    }
    for i in 0..bases.len() {
        let (root, d) = uf.find(i);
        if let Some(rv) = root_value.get(&root) {
            if rv + d < 0 {
                return None;
            }
        }
    }

    // Inequalities kill the conjunct only when both sides are forced equal.
    for l in lits.iter().filter(|l| !l.positive) {
        let li = intern(&l.lhs.base, &mut uf, &mut bases);
        let ri = intern(&l.rhs.base, &mut uf, &mut bases);
        let (lr, ld) = uf.find(li);
        let (rr, rd) = uf.find(ri);
        let lo = l.lhs.offset as i128;
        let ro = l.rhs.offset as i128;
        if lr == rr && ld + lo == rd + ro {
            return None;
        }
        if lr != rr {
            if let (Some(lv), Some(rv)) = (root_value.get(&lr), root_value.get(&rr)) {
                if lv + ld + lo == rv + rd + ro {
                    return None;
                }
            }
        }
    }

    let mut pinned = BTreeMap::new();
    for i in 0..bases.len() {
        if let SBase::Var(v) = bases[i].clone() {
            let (root, _) = uf.find(i);
            pinned.insert(v, root_value.contains_key(&root));
        }
    }
    Some(pinned)
}

impl Domain for NatSucc {
    type Elem = u64;

    fn name(&self) -> String {
        "⟨N, ′⟩".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn elem_term(&self, e: &u64) -> Term {
        Term::Nat(*e)
    }

    fn parse_elem(&self, t: &Term) -> Option<u64> {
        STerm::from_term(t).and_then(|s| s.value())
    }
}

impl DecidableTheory for NatSucc {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        let qf = self.quantifier_eliminate(sentence)?;
        eval_ground(&qf)
    }
}

/// Evaluate a ground quantifier-free N′ formula.
pub fn eval_ground(f: &Formula) -> Result<bool, DomainError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Eq(a, b) => {
            let av = STerm::from_term(a).and_then(|s| s.value());
            let bv = STerm::from_term(b).and_then(|s| s.value());
            match (av, bv) {
                (Some(x), Some(y)) => Ok(x == y),
                _ => Err(DomainError::NotASentence {
                    free: f.free_vars().into_iter().collect(),
                }),
            }
        }
        Formula::Not(g) => Ok(!eval_ground(g)?),
        Formula::And(gs) => {
            for g in gs {
                if !eval_ground(g)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval_ground(g)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => Ok(!eval_ground(a)? || eval_ground(b)?),
        Formula::Iff(a, b) => Ok(eval_ground(a)? == eval_ground(b)?),
        other => Err(DomainError::UnsupportedSymbol {
            symbol: other.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        NatSucc.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn successor_is_injective_and_zero_free() {
        assert!(decide("forall x y. x' = y' -> x = y"));
        assert!(decide("forall x. x' != 0"));
        assert!(decide("forall x. x' != x"));
    }

    #[test]
    fn every_nonzero_has_a_predecessor() {
        assert!(decide("forall x. x = 0 | exists y. y' = x"));
        assert!(!decide("forall x. exists y. y' = x"));
    }

    #[test]
    fn constants_fold() {
        assert!(decide("0'' = 2"));
        assert!(decide("1''' = 4"));
        assert!(!decide("0' = 0"));
    }

    #[test]
    fn existential_with_solution() {
        assert!(decide("exists x. x'' = 5"));
        // x'' = 1 needs x = −1.
        assert!(!decide("exists x. x'' = 1"));
    }

    #[test]
    fn guard_for_negative_shift() {
        // ∃x x′ = y ⟺ y ≠ 0.
        let f = parse_formula("exists x. x' = y").unwrap();
        let qf = NatSucc.quantifier_eliminate(&f).unwrap();
        assert!(qf.is_quantifier_free());
        let at0 = fq_logic::substitute(&qf, "y", &Term::Nat(0));
        assert!(!eval_ground(&fq_logic::transform::simplify(&at0)).unwrap());
        let at3 = fq_logic::substitute(&qf, "y", &Term::Nat(3));
        assert!(eval_ground(&fq_logic::transform::simplify(&at3)).unwrap());
    }

    #[test]
    fn inequalities_only_are_satisfiable() {
        assert!(decide("exists x. x != 0 & x != 1"));
        assert!(decide("forall y. exists x. x != y"));
    }

    #[test]
    fn no_loops_distinct_iterates() {
        // The paper: "any linearly ordered structure has no loop" — over ℕ,
        // x⁽ⁿ⁾ = x is false for n ≥ 1.
        assert!(!decide("exists x. x''' = x"));
        assert!(decide("forall x. x'' != x"));
    }

    #[test]
    fn nested_alternation() {
        assert!(decide("forall x. exists y. y = x'"));
        // y = 0 is not a successor.
        assert!(decide("exists y. forall x. y != x'"));
        assert!(!decide("forall y. exists x. y = x'"));
    }

    #[test]
    fn solution_finiteness_pinned() {
        let qf = parse_formula("x = 3").unwrap();
        assert!(NatSucc.solution_set_finite(&qf, &["x".into()]).unwrap());
        let qf2 = parse_formula("x' = 3").unwrap();
        assert!(NatSucc.solution_set_finite(&qf2, &["x".into()]).unwrap());
    }

    #[test]
    fn solution_finiteness_unpinned() {
        let qf = parse_formula("x != 3").unwrap();
        assert!(!NatSucc.solution_set_finite(&qf, &["x".into()]).unwrap());
        let qf2 = parse_formula("x = y'").unwrap();
        assert!(!NatSucc
            .solution_set_finite(&qf2, &["x".into(), "y".into()])
            .unwrap());
    }

    #[test]
    fn solution_finiteness_unsat_conjunct_is_finite() {
        let qf = parse_formula("x = 3 & x = 4").unwrap();
        assert!(NatSucc.solution_set_finite(&qf, &["x".into()]).unwrap());
        // Infeasible over ℕ: x = y and y'' = 1 forces y = −1.
        let qf2 = parse_formula("x = y'' & x = 1 & y = y").unwrap();
        assert!(NatSucc
            .solution_set_finite(&qf2, &["x".into(), "y".into()])
            .unwrap_or(true));
    }

    #[test]
    fn solution_finiteness_mixed_disjunction() {
        let qf = parse_formula("x = 3 | x != 5").unwrap();
        assert!(!NatSucc.solution_set_finite(&qf, &["x".into()]).unwrap());
    }

    #[test]
    fn pinned_through_chain() {
        let qf = parse_formula("x = y' & y = 2").unwrap();
        assert!(NatSucc
            .solution_set_finite(&qf, &["x".into(), "y".into()])
            .unwrap());
    }

    #[test]
    fn qe_output_is_quantifier_free() {
        for s in [
            "exists x. x' = y & x != z",
            "forall x. x != y | x = y",
            "exists x y. x' = y'' & y != 0",
        ] {
            let f = parse_formula(s).unwrap();
            let qf = NatSucc.quantifier_eliminate(&f).unwrap();
            assert!(qf.is_quantifier_free(), "{s} -> {qf}");
        }
    }

    #[test]
    fn qe_agrees_with_enumeration() {
        let f = parse_formula("exists x. x' = y & x != z").unwrap();
        let qf = NatSucc.quantifier_eliminate(&f).unwrap();
        for y in 0u64..5 {
            for z in 0u64..5 {
                let brute = (0u64..10).any(|x| x + 1 == y && x != z);
                let inst = fq_logic::transform::simplify(&fq_logic::substitute(
                    &fq_logic::substitute(&qf, "y", &Term::Nat(y)),
                    "z",
                    &Term::Nat(z),
                ));
                assert_eq!(eval_ground(&inst).unwrap(), brute, "y={y}, z={z}");
            }
        }
    }

    #[test]
    fn qe_negative_shift_substitution() {
        // ∃x (x'' = y ∧ x' = z) ⟺ y ≥ 2 ∧ y = z + 1 — check pointwise.
        let f = parse_formula("exists x. x'' = y & x' = z").unwrap();
        let qf = NatSucc.quantifier_eliminate(&f).unwrap();
        for y in 0u64..6 {
            for z in 0u64..6 {
                let brute = (0u64..10).any(|x| x + 2 == y && x + 1 == z);
                let inst = fq_logic::transform::simplify(&fq_logic::substitute(
                    &fq_logic::substitute(&qf, "y", &Term::Nat(y)),
                    "z",
                    &Term::Nat(z),
                ));
                assert_eq!(eval_ground(&inst).unwrap(), brute, "y={y}, z={z}");
            }
        }
    }

    #[test]
    fn rejects_order_symbols() {
        assert!(NatSucc
            .decide(&parse_formula("exists x. x < 1").unwrap())
            .is_err());
    }
}
