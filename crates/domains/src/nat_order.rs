//! The domain N< = ⟨ℕ, <⟩ of Section 2.1.
//!
//! "Of special interest is the fact that the results presented here remain
//! true for extensions of the domain" — ⟨ℕ, <⟩ is a reduct of Presburger
//! arithmetic, so its sentences (and those of any Presburger-definable
//! extension) are decided by delegating to Cooper's procedure.
//!
//! This module also provides [`NatOrder::active_domain_formula`], the
//! formula Δ(x) defining the active domain that Fact 2.1's construction
//! uses, specialized to a given finite set of constants.

use crate::domain::{DecidableTheory, Domain, DomainError};
use crate::presburger::Presburger;
use fq_logic::{Formula, Term};

/// The domain ⟨ℕ, <⟩ (with ≤, >, ≥ as definable conveniences).
///
/// Sentences may freely use the richer Presburger signature — the paper's
/// theorems are stated "for any extension of the domain N<", and the
/// decision procedure covers the canonical one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NatOrder;

impl NatOrder {
    /// The formula `Δ(x)`: `x` belongs to the given finite set of elements
    /// (used as the "active domain" formula in Fact 2.1's construction,
    /// where the active domain has been materialized by the relational
    /// layer).
    pub fn active_domain_formula(&self, var: &str, elements: &[u64]) -> Formula {
        Formula::or(
            elements
                .iter()
                .map(|e| Formula::eq(Term::var(var), Term::Nat(*e))),
        )
    }

    /// The Fact 2.1 witness formula: "the smallest integer greater than all
    /// active-domain elements", over the given materialized active domain.
    ///
    /// The resulting formula is **finite** (its answer is always one
    /// element) but **not domain-independent** (the answer lies outside
    /// the active domain).
    pub fn least_upper_witness(&self, var: &str, active: &[u64]) -> Formula {
        let delta_y = self.active_domain_formula("y", active);
        // (∀y)(Δ(y) → x > y) ∧ (∀y)(y < x → (∃z)(Δ(z) ∧ z ≥ y))
        Formula::and([
            Formula::forall(
                "y",
                Formula::implies(
                    delta_y.clone(),
                    Formula::pred(">", vec![Term::var(var), Term::var("y")]),
                ),
            ),
            Formula::forall(
                "y",
                Formula::implies(
                    Formula::lt(Term::var("y"), Term::var(var)),
                    Formula::exists(
                        "z",
                        Formula::and([
                            self.active_domain_formula("z", active),
                            Formula::pred(">=", vec![Term::var("z"), Term::var("y")]),
                        ]),
                    ),
                ),
            ),
        ])
    }
}

impl Domain for NatOrder {
    type Elem = u64;

    fn name(&self) -> String {
        "⟨N, <⟩".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn elem_term(&self, e: &u64) -> Term {
        Term::Nat(*e)
    }

    fn parse_elem(&self, t: &Term) -> Option<u64> {
        match t {
            Term::Nat(n) => Some(*n),
            _ => None,
        }
    }
}

impl DecidableTheory for NatOrder {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        Presburger.decide(sentence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        NatOrder.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn discrete_unbounded_order_with_least_element() {
        assert!(decide("exists x. forall y. x <= y"));
        assert!(decide("forall x. exists y. x < y"));
        assert!(!decide("forall x. exists y. y < x"));
        // Discreteness: nothing strictly between x and x+1 — expressible
        // in the extension with +.
        assert!(decide("forall x. !(exists z. x < z & z < x + 1)"));
    }

    #[test]
    fn active_domain_formula_defines_membership() {
        let delta = NatOrder.active_domain_formula("x", &[2, 5]);
        let member = Formula::forall_many(
            Vec::<String>::new(),
            fq_logic::substitute(&delta, "x", &Term::Nat(5)),
        );
        assert!(NatOrder.decide(&member).unwrap());
        let non_member = fq_logic::substitute(&delta, "x", &Term::Nat(3));
        assert!(!NatOrder.decide(&non_member).unwrap());
    }

    #[test]
    fn fact_2_1_witness_is_the_least_strict_upper_bound() {
        // Active domain {1, 4}: the witness must be exactly 5.
        let phi = NatOrder.least_upper_witness("x", &[1, 4]);
        let at_5 = fq_logic::substitute(&phi, "x", &Term::Nat(5));
        assert!(NatOrder.decide(&at_5).unwrap());
        for other in [0, 1, 4, 6, 7] {
            let at = fq_logic::substitute(&phi, "x", &Term::Nat(other));
            assert!(!NatOrder.decide(&at).unwrap(), "x = {other}");
        }
    }

    #[test]
    fn fact_2_1_witness_has_exactly_one_answer() {
        let phi = NatOrder.least_upper_witness("x", &[3, 7]);
        let unique = Formula::exists(
            "x",
            Formula::and([
                phi.clone(),
                Formula::forall(
                    "x2",
                    Formula::implies(
                        fq_logic::substitute(&phi, "x", &Term::var("x2")),
                        Formula::eq(Term::var("x2"), Term::var("x")),
                    ),
                ),
            ]),
        );
        assert!(NatOrder.decide(&unique).unwrap());
    }

    #[test]
    fn empty_active_domain_witness_is_zero() {
        // With an empty active domain the least strict upper bound is 0
        // (every y < x must be dominated by an active element — vacuous
        // only when x = 0).
        let phi = NatOrder.least_upper_witness("x", &[]);
        let at_0 = fq_logic::substitute(&phi, "x", &Term::Nat(0));
        assert!(NatOrder.decide(&at_0).unwrap());
        let at_1 = fq_logic::substitute(&phi, "x", &Term::Nat(1));
        assert!(!NatOrder.decide(&at_1).unwrap());
    }
}
