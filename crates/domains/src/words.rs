//! The domain of input words with length-lexicographic order.
//!
//! Section 2.2 closes: "the same ideas can be carried out for many other
//! domains, say, for strings (words in a finite alphabet) with
//! lexicographical ordering." This module makes that remark concrete: the
//! domain ⟨{1,&}*, ⊑⟩ with the length-lex order is *isomorphic* to
//! ⟨ℕ, <⟩ via the canonical enumeration index, so its theory is decided by
//! translating through the isomorphism into Presburger arithmetic — and
//! the Theorem 2.2 finitization syntax transfers verbatim.

use crate::domain::{require_sentence, DecidableTheory, Domain, DomainError};
use crate::presburger::Presburger;
use fq_logic::{Formula, Term};

/// The domain ⟨{1,&}*, ⊑⟩: words ordered by length, then lexicographically
/// (`1` before `&`). The order predicate is written `llex` in formulas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WordsLlex;

impl WordsLlex {
    /// The enumeration index of a word — the isomorphism with ℕ.
    pub fn index(word: &str) -> Option<u64> {
        if !word.chars().all(|c| matches!(c, '1' | '&')) {
            return None;
        }
        let n = word.len() as u32;
        // Words shorter than n: 2^n − 1; then the binary offset (1 = 0).
        let shorter = (1u64 << n) - 1;
        let offset = word
            .chars()
            .fold(0u64, |acc, c| acc * 2 + if c == '1' { 0 } else { 1 });
        Some(shorter + offset)
    }

    /// The word at an enumeration index — the inverse isomorphism.
    pub fn word_at(mut index: u64) -> String {
        let mut len = 0u32;
        while index >= (1u64 << len) {
            index -= 1u64 << len;
            len += 1;
        }
        let mut out = vec!['1'; len as usize];
        for i in (0..len as usize).rev() {
            if index % 2 == 1 {
                out[i] = '&';
            }
            index /= 2;
        }
        out.into_iter().collect()
    }

    /// The length-lex order itself.
    pub fn llex_lt(a: &str, b: &str) -> bool {
        let rank = |c: char| if c == '1' { 0u8 } else { 1 };
        a.len() < b.len() || (a.len() == b.len() && a.chars().map(rank).lt(b.chars().map(rank)))
    }

    /// Translate a formula over this domain (equality, `llex`, word
    /// literals) into a Presburger formula via the isomorphism.
    pub fn translate(&self, f: &Formula) -> Result<Formula, DomainError> {
        fn term(t: &Term) -> Result<Term, DomainError> {
            match t {
                Term::Var(v) => Ok(Term::var(v.clone())),
                Term::Str(s) => {
                    WordsLlex::index(s)
                        .map(Term::Nat)
                        .ok_or_else(|| DomainError::SortMismatch {
                            detail: format!("\"{s}\" is not a word over {{1,&}}"),
                        })
                }
                other => Err(DomainError::UnsupportedSymbol {
                    symbol: other.to_string(),
                }),
            }
        }
        match f {
            Formula::True | Formula::False => Ok(f.clone()),
            Formula::Eq(a, b) => Ok(Formula::eq(term(a)?, term(b)?)),
            Formula::Pred(name, args) if name == "llex" && args.len() == 2 => {
                Ok(Formula::lt(term(&args[0])?, term(&args[1])?))
            }
            Formula::Pred(name, args) => Err(DomainError::UnsupportedSymbol {
                symbol: format!("{name}/{}", args.len()),
            }),
            Formula::Not(g) => Ok(Formula::not(self.translate(g)?)),
            Formula::And(gs) => {
                let parts: Result<Vec<_>, _> = gs.iter().map(|g| self.translate(g)).collect();
                Ok(Formula::and(parts?))
            }
            Formula::Or(gs) => {
                let parts: Result<Vec<_>, _> = gs.iter().map(|g| self.translate(g)).collect();
                Ok(Formula::or(parts?))
            }
            Formula::Implies(a, b) => Ok(Formula::implies(self.translate(a)?, self.translate(b)?)),
            Formula::Iff(a, b) => Ok(Formula::iff(self.translate(a)?, self.translate(b)?)),
            Formula::Exists(v, g) => Ok(Formula::exists(v.clone(), self.translate(g)?)),
            Formula::Forall(v, g) => Ok(Formula::forall(v.clone(), self.translate(g)?)),
        }
    }
}

impl Domain for WordsLlex {
    type Elem = String;

    fn name(&self) -> String {
        "⟨{1,&}*, ⊑⟩ (length-lex words)".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<String> {
        (0..n as u64).map(Self::word_at).collect()
    }

    fn elem_term(&self, e: &String) -> Term {
        Term::Str(e.clone())
    }

    fn parse_elem(&self, t: &Term) -> Option<String> {
        match t {
            Term::Str(s) if s.chars().all(|c| matches!(c, '1' | '&')) => Some(s.clone()),
            _ => None,
        }
    }
}

impl DecidableTheory for WordsLlex {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        Presburger.decide(&self.translate(sentence)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        WordsLlex.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn index_matches_enumeration_order() {
        let words = WordsLlex.enumerate(64);
        for (i, w) in words.iter().enumerate() {
            assert_eq!(WordsLlex::index(w), Some(i as u64), "{w}");
            assert_eq!(WordsLlex::word_at(i as u64), *w);
        }
        // And the order predicate agrees with the indices.
        for (i, a) in words.iter().enumerate() {
            for (j, b) in words.iter().enumerate() {
                assert_eq!(WordsLlex::llex_lt(a, b), i < j, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn index_rejects_foreign_strings() {
        assert_eq!(WordsLlex::index("1*1"), None);
        assert_eq!(WordsLlex::index("abc"), None);
    }

    #[test]
    fn the_order_is_discrete_with_least_element() {
        // ε is the least word.
        assert!(decide("forall x. x = \"\" | llex(\"\", x)"));
        // No maximum.
        assert!(decide("forall x. exists y. llex(x, y)"));
        // Discreteness: "1" is the immediate successor of ε.
        assert!(decide("forall x. !(llex(\"\", x) & llex(x, \"1\"))"));
    }

    #[test]
    fn constants_translate_correctly() {
        assert!(decide("llex(\"\", \"1\")"));
        assert!(decide("llex(\"1\", \"&\")"));
        assert!(decide("llex(\"&\", \"11\")"));
        assert!(!decide("llex(\"&\", \"1\")"));
        // Length dominates: "&&" before "111".
        assert!(decide("llex(\"&&\", \"111\")"));
    }

    #[test]
    fn quantifier_alternation() {
        // Between any word and its index+2 word there is exactly one word.
        assert!(decide(
            "forall x. exists y. llex(x, y) & forall z. llex(x, z) -> y = z | llex(y, z)"
        ));
    }

    #[test]
    fn finitization_syntax_transfers() {
        // Theorem 2.2 over this extension-of-⟨N,<⟩-up-to-isomorphism:
        // "llex(x, "11")" is finite — its translation is equivalent to its
        // finitization in Presburger.
        let phi = parse_formula("llex(x, \"11\")").unwrap();
        let translated = WordsLlex.translate(&phi).unwrap();
        let fin = crate::presburger::Presburger;
        let finitized = {
            // Inline Theorem 2.2 shape: φ ∧ ∃m∀x(φ → x < m).
            let bound = Formula::exists(
                "m",
                Formula::forall(
                    "x",
                    Formula::implies(
                        translated.clone(),
                        Formula::lt(Term::var("x"), Term::var("m")),
                    ),
                ),
            );
            Formula::and([translated.clone(), bound])
        };
        assert!(fin.equivalent(&translated, &finitized).unwrap());
    }

    #[test]
    fn rejects_foreign_symbols() {
        assert!(WordsLlex
            .decide(&parse_formula("exists x. x < 1").unwrap())
            .is_err());
        assert!(WordsLlex
            .decide(&parse_formula("exists x. x = \"1*\"").unwrap())
            .is_err());
    }

    #[test]
    fn domain_round_trip() {
        for w in ["", "1", "&", "1&1&", "&&&&&"] {
            let e = w.to_string();
            assert_eq!(WordsLlex.parse_elem(&WordsLlex.elem_term(&e)), Some(e));
        }
    }
}
