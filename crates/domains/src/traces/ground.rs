//! Ground evaluation of Reach-theory atoms and quantifier-free formulas.
//!
//! Every Reach symbol is recursive (Fact A.1: "Domain T is recursive"):
//! sorts by classification, `B_w` by padded-prefix comparison, `D_i`/`E_i`
//! by `i`-step bounded simulation of the decoded machine.

use super::rterm::{RAtom, RFormula, RTerm};
use crate::domain::DomainError;
use fq_turing::decode_machine;
use fq_turing::sym::{classify, Sort};
use fq_turing::trace::{has_at_least_traces, has_exactly_traces};

/// Evaluate a ground term to its string value.
pub fn eval_term(t: &RTerm) -> Result<String, DomainError> {
    match t {
        RTerm::Lit(s) => Ok(s.clone()),
        RTerm::Var(v) | RTerm::WOf(v) | RTerm::MOf(v) => Err(DomainError::NotASentence {
            free: vec![v.clone()],
        }),
    }
}

/// `B_w(s)`: `s` is a word and `w` is a prefix of `s·&^ω`.
pub fn padded_prefix(w: &str, s: &str) -> bool {
    if classify(s) != Sort::Word {
        return false;
    }
    let sb = s.as_bytes();
    w.bytes()
        .enumerate()
        .all(|(k, wc)| sb.get(k).copied().unwrap_or(b'&') == wc)
}

/// `D_i(m, u)` on strings: `m` decodes to a machine, `u` is a word, and
/// the machine has at least `i` traces in `u`.
pub fn d_holds(i: usize, m: &str, u: &str) -> bool {
    if classify(u) != Sort::Word {
        return false;
    }
    match decode_machine(m) {
        Some(machine) => has_at_least_traces(&machine, u, i),
        None => false,
    }
}

/// `E_i(m, u)` on strings.
pub fn e_holds(i: usize, m: &str, u: &str) -> bool {
    if classify(u) != Sort::Word {
        return false;
    }
    match decode_machine(m) {
        Some(machine) => has_exactly_traces(&machine, u, i),
        None => false,
    }
}

/// Evaluate a ground atom.
pub fn eval_atom(a: &RAtom) -> Result<bool, DomainError> {
    match a {
        RAtom::IsSort(sort, t) => Ok(classify(&eval_term(t)?) == *sort),
        RAtom::Prefix(w, t) => Ok(padded_prefix(w, &eval_term(t)?)),
        RAtom::AtLeast(i, m, u) => Ok(d_holds(*i, &eval_term(m)?, &eval_term(u)?)),
        RAtom::Exact(i, m, u) => Ok(e_holds(*i, &eval_term(m)?, &eval_term(u)?)),
        RAtom::Eq(x, y) => Ok(eval_term(x)? == eval_term(y)?),
    }
}

/// Evaluate a ground quantifier-free formula.
pub fn eval_formula(f: &RFormula) -> Result<bool, DomainError> {
    match f {
        RFormula::True => Ok(true),
        RFormula::False => Ok(false),
        RFormula::Atom(a) => eval_atom(a),
        RFormula::Not(g) => Ok(!eval_formula(g)?),
        RFormula::And(gs) => {
            for g in gs {
                if !eval_formula(g)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        RFormula::Or(gs) => {
            for g in gs {
                if eval_formula(g)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        RFormula::Exists(..) | RFormula::Forall(..) => Err(DomainError::BudgetExhausted {
            detail: "eval_formula requires a quantifier-free formula".into(),
        }),
    }
}

/// Fold ground subformulas and deduplicate — the Reach analogue of the
/// Presburger `psimplify`.
pub fn rsimplify(f: &RFormula) -> RFormula {
    match f {
        RFormula::True | RFormula::False => f.clone(),
        RFormula::Atom(a) => match eval_atom(a) {
            Ok(true) => RFormula::True,
            Ok(false) => RFormula::False,
            Err(_) => {
                // Non-ground: local structural folds.
                match a {
                    RAtom::Eq(x, y) if x == y => RFormula::True,
                    _ => f.clone(),
                }
            }
        },
        RFormula::Not(g) => RFormula::not(rsimplify(g)),
        RFormula::And(gs) => {
            let mut seen: std::collections::BTreeSet<RFormula> = Default::default();
            for g in gs {
                match rsimplify(g) {
                    RFormula::True => {}
                    RFormula::False => return RFormula::False,
                    RFormula::And(inner) => seen.extend(inner),
                    other => {
                        seen.insert(other);
                    }
                }
            }
            // Complementary literal pairs.
            for g in &seen {
                if seen.contains(&RFormula::not(g.clone())) {
                    return RFormula::False;
                }
            }
            RFormula::and(seen)
        }
        RFormula::Or(gs) => {
            let mut seen: std::collections::BTreeSet<RFormula> = Default::default();
            for g in gs {
                match rsimplify(g) {
                    RFormula::False => {}
                    RFormula::True => return RFormula::True,
                    RFormula::Or(inner) => seen.extend(inner),
                    other => {
                        seen.insert(other);
                    }
                }
            }
            for g in &seen {
                if seen.contains(&RFormula::not(g.clone())) {
                    return RFormula::True;
                }
            }
            RFormula::or(seen)
        }
        RFormula::Exists(v, g) => {
            let body = rsimplify(g);
            match body {
                RFormula::True => RFormula::True,
                RFormula::False => RFormula::False,
                other if !other.mentions(v) => other,
                other => RFormula::Exists(v.clone(), Box::new(other)),
            }
        }
        RFormula::Forall(v, g) => {
            let body = rsimplify(g);
            match body {
                RFormula::True => RFormula::True,
                RFormula::False => RFormula::False,
                other if !other.mentions(v) => other,
                other => RFormula::Forall(v.clone(), Box::new(other)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_turing::builders;
    use fq_turing::encode::encode_machine;
    use fq_turing::trace::trace_string;

    #[test]
    fn padded_prefix_semantics() {
        assert!(padded_prefix("11&", "11"));
        assert!(padded_prefix("11&", "11&1"));
        assert!(!padded_prefix("11&", "111"));
        assert!(padded_prefix("", ""));
        assert!(padded_prefix("&&", ""));
        // Non-words never satisfy B.
        assert!(!padded_prefix("1", "1*1&1*1&1&11*"));
    }

    #[test]
    fn d_and_e_on_strings() {
        let m = encode_machine(&builders::scan_right_halt_on_blank());
        // Halts on "11" after 2 steps: 3 traces.
        assert!(d_holds(3, &m, "11"));
        assert!(!d_holds(4, &m, "11"));
        assert!(e_holds(3, &m, "11"));
        assert!(!e_holds(2, &m, "11"));
        // Invalid machine string.
        assert!(!d_holds(1, "11", "11"));
        // Non-word second argument.
        assert!(!d_holds(1, &m, &m));
    }

    #[test]
    fn eval_atom_ground() {
        let m = builders::looper();
        let enc = encode_machine(&m);
        let tr = trace_string(&m, "1", 2).unwrap();
        assert!(eval_atom(&RAtom::IsSort(Sort::Trace, RTerm::Lit(tr.clone()))).unwrap());
        assert!(eval_atom(&RAtom::Eq(
            RTerm::m_of(RTerm::Lit(tr.clone())),
            RTerm::Lit(enc)
        ))
        .unwrap());
        assert!(eval_atom(&RAtom::Eq(
            RTerm::w_of(RTerm::Lit(tr)),
            RTerm::Lit("1".into())
        ))
        .unwrap());
    }

    #[test]
    fn eval_formula_rejects_free_vars() {
        let f = RFormula::Atom(RAtom::Eq(RTerm::Var("x".into()), RTerm::Lit("".into())));
        assert!(eval_formula(&f).is_err());
    }

    #[test]
    fn rsimplify_folds_ground() {
        let f = RFormula::and([
            RFormula::Atom(RAtom::Eq(RTerm::Lit("1".into()), RTerm::Lit("1".into()))),
            RFormula::Atom(RAtom::Eq(RTerm::Var("x".into()), RTerm::Lit("".into()))),
        ]);
        let s = rsimplify(&f);
        assert_eq!(
            s,
            RFormula::Atom(RAtom::Eq(RTerm::Var("x".into()), RTerm::Lit("".into())))
        );
    }

    #[test]
    fn rsimplify_detects_complementary() {
        let a = RFormula::Atom(RAtom::Eq(RTerm::Var("x".into()), RTerm::Lit("".into())));
        let f = RFormula::and([a.clone(), RFormula::not(a)]);
        assert_eq!(rsimplify(&f), RFormula::False);
    }

    #[test]
    fn reflexive_equality_folds() {
        let f = RFormula::Atom(RAtom::Eq(RTerm::Var("x".into()), RTerm::Var("x".into())));
        assert_eq!(rsimplify(&f), RFormula::True);
    }
}
