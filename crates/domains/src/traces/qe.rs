//! Quantifier elimination for the Reach Theory of Traces (Theorem A.3).
//!
//! Following the Appendix, eliminating `∃x ψ` (ψ a conjunction of literals)
//! proceeds by cases on the sort of `x`:
//!
//! * **Case M** — the `D`/`E` constraints on `x` (with constant second
//!   arguments after B-expansion) are satisfiable iff Lemma A.2 says so,
//!   and then "it is satisfiable for infinitely many different machines",
//!   absorbing the inequalities.
//! * **Case W** — after B-expansion every `D`/`E` atom has a constant
//!   word argument, so only prefix constraints and inequalities mention
//!   `x`; merged consistent prefixes leave infinitely many words.
//! * **Case T** — four subcases T−1 … T−4 depending on which of
//!   `m(x) = t`, `w(x) = v` are present; T−4 ends in the combinatorial
//!   disjunction over equality patterns of the excluded traces, producing
//!   `D_{n+1}(t, v)`.
//! * **Case O** — "a trivial case": only inequalities can mention `x`,
//!   and the sort of other words is infinite.
//!
//! The *B-expansion* step (paper: "Using B_v for all input words whose
//! length does not exceed the maximum of i₁ … j_l") rewrites
//! `D_i(t, u) ⟺ ⋁_{|w| = i−1} (B_w(u) ∧ D_i(t, w))` — sound because a
//! machine's first `i − 1` steps read at most the first `i − 1` padded
//! tape cells.

use super::ground::rsimplify;
use super::lemma_a2::DESystem;
use super::rterm::{RAtom, RFormula, RTerm};
use crate::domain::DomainError;
use fq_engine::Engine;
use fq_turing::sym::Sort;

/// Eliminate all quantifiers from a Reach formula, with a private
/// sequential [`Engine`].
pub fn eliminate(f: &RFormula) -> RFormula {
    eliminate_with(&Engine::sequential(), f)
}

/// Eliminate all quantifiers through an explicit [`Engine`]: independent
/// `And`/`Or` children fan out across the engine's worker threads, and
/// `∃`-elimination results are memoized on hash-consed subformula ids.
/// Results are identical to [`eliminate`] for every configuration.
pub fn eliminate_with(engine: &Engine, f: &RFormula) -> RFormula {
    match f {
        RFormula::True | RFormula::False | RFormula::Atom(_) => rsimplify(f),
        RFormula::Not(g) => RFormula::not(eliminate_with(engine, g)),
        RFormula::And(gs) => RFormula::and(engine.parallel_map(gs, |g| eliminate_with(engine, g))),
        RFormula::Or(gs) => RFormula::or(engine.parallel_map(gs, |g| eliminate_with(engine, g))),
        RFormula::Exists(v, g) => rsimplify(&eliminate_exists_with(
            engine,
            v,
            &eliminate_with(engine, g),
        )),
        RFormula::Forall(v, g) => rsimplify(&RFormula::not(eliminate_exists_with(
            engine,
            v,
            &RFormula::not(eliminate_with(engine, g)),
        ))),
    }
}

/// Decide a Reach sentence: eliminate, then evaluate the ground residue.
pub fn decide(sentence: &RFormula) -> Result<bool, DomainError> {
    decide_with(&Engine::sequential(), sentence)
}

/// [`decide`] through an explicit [`Engine`].
pub fn decide_with(engine: &Engine, sentence: &RFormula) -> Result<bool, DomainError> {
    super::ground::eval_formula(&eliminate_with(engine, sentence))
}

// ---------------------------------------------------------------------
// Normalization: positive form + B-expansion.
// ---------------------------------------------------------------------

/// The three sorts other than `s`.
fn other_sorts(s: Sort) -> [Sort; 3] {
    let all = [Sort::Machine, Sort::Word, Sort::Trace, Sort::Other];
    let mut out = [Sort::Machine; 3];
    let mut k = 0;
    for cand in all {
        if cand != s {
            out[k] = cand;
            k += 1;
        }
    }
    out
}

/// `¬W(t)` as a positive disjunction of the other sorts.
fn not_sort(s: Sort, t: &RTerm) -> RFormula {
    RFormula::or(
        other_sorts(s)
            .into_iter()
            .map(|o| RFormula::Atom(RAtom::IsSort(o, t.clone()))),
    )
}

/// Positive normal form: negations are rewritten into positive atoms
/// (only `≠` literals remain negative), and trivial `D`/`E` indices are
/// normalized (`D_0`, `D_1` ⟺ sorts are right; `E_0` ⟺ false).
fn positive(f: &RFormula, sign: bool) -> RFormula {
    match f {
        RFormula::True => {
            if sign {
                RFormula::True
            } else {
                RFormula::False
            }
        }
        RFormula::False => {
            if sign {
                RFormula::False
            } else {
                RFormula::True
            }
        }
        RFormula::Not(g) => positive(g, !sign),
        RFormula::And(gs) => {
            let parts = gs.iter().map(|g| positive(g, sign));
            if sign {
                RFormula::and(parts)
            } else {
                RFormula::or(parts)
            }
        }
        RFormula::Or(gs) => {
            let parts = gs.iter().map(|g| positive(g, sign));
            if sign {
                RFormula::or(parts)
            } else {
                RFormula::and(parts)
            }
        }
        RFormula::Exists(..) | RFormula::Forall(..) => {
            unreachable!("positive() is applied to quantifier-free formulas")
        }
        RFormula::Atom(a) => positive_atom(a, sign),
    }
}

fn positive_atom(a: &RAtom, sign: bool) -> RFormula {
    match (a, sign) {
        // D_0 / D_1 hold exactly when the arguments have the right sorts.
        (RAtom::AtLeast(i, t, u), _) if *i <= 1 => {
            let sorts = RFormula::and([
                RFormula::Atom(RAtom::IsSort(Sort::Machine, t.clone())),
                RFormula::Atom(RAtom::IsSort(Sort::Word, u.clone())),
            ]);
            positive(&sorts, sign)
        }
        (RAtom::Exact(0, ..), _) => {
            if sign {
                RFormula::False
            } else {
                RFormula::True
            }
        }
        (_, true) => RFormula::Atom(a.clone()),
        // Negations:
        (RAtom::IsSort(s, t), false) => not_sort(*s, t),
        (RAtom::Prefix(s, t), false) => {
            // ¬B_s(t) ⟺ t is not a word, or the padded prefix first
            // differs from s at some position k.
            let mut parts = vec![not_sort(Sort::Word, t)];
            for k in 0..s.len() {
                let mut flipped: String = s[..k].to_string();
                flipped.push(if s.as_bytes()[k] == b'1' { '&' } else { '1' });
                parts.push(RFormula::Atom(RAtom::Prefix(flipped, t.clone())));
            }
            RFormula::or(parts)
        }
        (RAtom::AtLeast(i, t, u), false) => {
            // ¬D_i ⟺ wrong sorts, or exactly j traces for some j < i.
            let mut parts = vec![not_sort(Sort::Machine, t), not_sort(Sort::Word, u)];
            for j in 1..*i {
                parts.push(RFormula::Atom(RAtom::Exact(j, t.clone(), u.clone())));
            }
            RFormula::or(parts)
        }
        (RAtom::Exact(j, t, u), false) => {
            // ¬E_j ⟺ wrong sorts, more than j, or exactly r < j.
            let mut parts = vec![
                not_sort(Sort::Machine, t),
                not_sort(Sort::Word, u),
                RFormula::Atom(RAtom::AtLeast(j + 1, t.clone(), u.clone())),
            ];
            for r in 1..*j {
                parts.push(RFormula::Atom(RAtom::Exact(r, t.clone(), u.clone())));
            }
            RFormula::or(parts)
        }
        (RAtom::Eq(..), false) => RFormula::Not(Box::new(RFormula::Atom(a.clone()))),
    }
}

/// All words over `{1, &}` of exactly length `n`.
fn words_of_length(n: usize) -> Vec<String> {
    let mut out = vec![String::new()];
    for _ in 0..n {
        let mut next = Vec::with_capacity(out.len() * 2);
        for w in out {
            next.push(format!("{w}1"));
            next.push(format!("{w}&"));
        }
        out = next;
    }
    out
}

/// B-expansion: rewrite every `D`/`E` atom whose second argument is not a
/// string constant into a disjunction over the relevant padded prefixes.
fn expand_word_arguments(f: &RFormula) -> RFormula {
    match f {
        RFormula::True | RFormula::False => f.clone(),
        RFormula::Not(g) => RFormula::not(expand_word_arguments(g)),
        RFormula::And(gs) => RFormula::and(gs.iter().map(expand_word_arguments)),
        RFormula::Or(gs) => RFormula::or(gs.iter().map(expand_word_arguments)),
        RFormula::Exists(v, g) => RFormula::Exists(v.clone(), Box::new(expand_word_arguments(g))),
        RFormula::Forall(v, g) => RFormula::Forall(v.clone(), Box::new(expand_word_arguments(g))),
        RFormula::Atom(a) => match a {
            RAtom::AtLeast(i, t, u) if u.value().is_none() && *i >= 2 => {
                // D_i depends on the padded prefix of length i−1.
                RFormula::or(words_of_length(i - 1).into_iter().map(|w| {
                    RFormula::and([
                        RFormula::Atom(RAtom::Prefix(w.clone(), u.clone())),
                        RFormula::Atom(RAtom::AtLeast(*i, t.clone(), RTerm::Lit(w))),
                    ])
                }))
            }
            RAtom::Exact(j, t, u) if u.value().is_none() && *j >= 1 => {
                // E_j depends on the padded prefix of length j.
                RFormula::or(words_of_length(*j).into_iter().map(|w| {
                    RFormula::and([
                        RFormula::Atom(RAtom::Prefix(w.clone(), u.clone())),
                        RFormula::Atom(RAtom::Exact(*j, t.clone(), RTerm::Lit(w))),
                    ])
                }))
            }
            _ => f.clone(),
        },
    }
}

// ---------------------------------------------------------------------
// DNF with opaque x-free pieces.
// ---------------------------------------------------------------------

type RLit = (bool, RAtom);

enum Piece {
    Lit(RLit),
    Opaque(RFormula),
}

/// A canonical DNF conjunct: deduplicated literal and opaque-residue sets.
type RConjunct = (
    std::collections::BTreeSet<RLit>,
    std::collections::BTreeSet<RFormula>,
);

/// Semantically prune a conjunct's literal set; `None` if contradictory.
///
/// Without this the distribution product explodes: a `∀y`-driven negation
/// of a `2^j`-way B-expansion turns into a product of `2^j` clauses with
/// ~7 branches each (sorts + prefix flips), i.e. `7^(2^j)` raw conjuncts —
/// almost all of which die on a sort clash or incompatible prefixes.
fn prune_conjunct(
    lits: std::collections::BTreeSet<RLit>,
) -> Option<std::collections::BTreeSet<RLit>> {
    use std::collections::BTreeMap;
    let mut out: std::collections::BTreeSet<RLit> = Default::default();
    let mut sorts: BTreeMap<RTerm, Sort> = BTreeMap::new();
    let mut prefixes: BTreeMap<RTerm, Vec<String>> = BTreeMap::new();

    for (sign, atom) in &lits {
        // Complementary literal pair.
        if lits.contains(&(!sign, atom.clone())) {
            return None;
        }
        match (atom, sign) {
            (RAtom::IsSort(s, t), true) => match sorts.get(t) {
                Some(prev) if prev != s => return None,
                _ => {
                    sorts.insert(t.clone(), *s);
                    out.insert((true, atom.clone()));
                }
            },
            (RAtom::Prefix(w, t), true) => {
                prefixes.entry(t.clone()).or_default().push(w.clone());
            }
            _ => {
                out.insert((*sign, atom.clone()));
            }
        }
    }
    // Prefixes only hold on words: a non-Word sort assertion clashes.
    for (t, ws) in prefixes {
        if let Some(s) = sorts.get(&t) {
            if *s != Sort::Word && !matches!(t, RTerm::WOf(_)) {
                return None;
            }
        }
        let merged = merge_prefixes(&ws)?;
        out.insert((true, RAtom::Prefix(merged, t)));
    }
    Some(out)
}

fn dnf_wrt(f: &RFormula, var: &str) -> std::collections::BTreeSet<RConjunct> {
    use std::collections::BTreeSet;
    if !f.mentions(var) {
        let mut c: RConjunct = Default::default();
        c.1.insert(f.clone());
        return [c].into();
    }
    match f {
        RFormula::True => [RConjunct::default()].into(),
        RFormula::False => BTreeSet::new(),
        RFormula::Atom(a) => {
            let mut c = RConjunct::default();
            c.0.insert((true, a.clone()));
            [c].into()
        }
        RFormula::Not(g) => match g.as_ref() {
            RFormula::Atom(a @ RAtom::Eq(..)) => {
                let mut c = RConjunct::default();
                c.0.insert((false, a.clone()));
                [c].into()
            }
            _ => unreachable!("positive() leaves only negated equalities"),
        },
        RFormula::Or(gs) => gs.iter().flat_map(|g| dnf_wrt(g, var)).collect(),
        RFormula::And(gs) => {
            let mut acc: BTreeSet<RConjunct> = [RConjunct::default()].into();
            for g in gs {
                let parts = dnf_wrt(g, var);
                let mut next: BTreeSet<RConjunct> = BTreeSet::new();
                for (a_lits, a_opq) in &acc {
                    for (b_lits, b_opq) in &parts {
                        let merged: BTreeSet<RLit> = a_lits.union(b_lits).cloned().collect();
                        let Some(pruned) = prune_conjunct(merged) else {
                            continue;
                        };
                        let opaque: BTreeSet<RFormula> = a_opq.union(b_opq).cloned().collect();
                        next.insert((pruned, opaque));
                    }
                }
                acc = next;
            }
            acc
        }
        RFormula::Exists(..) | RFormula::Forall(..) => unreachable!("QF input"),
    }
}

// ---------------------------------------------------------------------
// Eliminating one existential.
// ---------------------------------------------------------------------

/// Eliminate `∃var` over a quantifier-free body.
pub fn eliminate_exists(var: &str, qf: &RFormula) -> RFormula {
    eliminate_exists_with(&Engine::sequential(), var, qf)
}

/// [`eliminate_exists`] through an explicit [`Engine`].
///
/// The whole call and each DNF conjunct are memoized on `(var, interned
/// formula id)` — the `∀`-driven negations of B-expansions reproduce the
/// same conjuncts across sibling disjuncts, so both caches hit heavily.
/// Conjuncts are eliminated in parallel and merged back in their
/// canonical (`BTreeSet`) order, so the output never depends on thread
/// scheduling.
pub fn eliminate_exists_with(engine: &Engine, var: &str, qf: &RFormula) -> RFormula {
    if !qf.mentions(var) {
        return qf.clone();
    }
    let key = (var.to_string(), engine.intern(qf.clone()).id());
    engine.cached("reach.exists", key, || {
        let prepared = expand_word_arguments(&positive(&rsimplify(qf), true));
        let conjuncts: Vec<RConjunct> = dnf_wrt(&prepared, var).into_iter().collect();
        RFormula::or(engine.parallel_map(&conjuncts, |conjunct| {
            let key = (var.to_string(), engine.intern(conjunct.clone()).id());
            engine.cached("reach.conjunct", key, || {
                let (lits, opaque) = conjunct;
                let pieces: Vec<Piece> = lits
                    .iter()
                    .cloned()
                    .map(Piece::Lit)
                    .chain(opaque.iter().cloned().map(Piece::Opaque))
                    .collect();
                rsimplify(&eliminate_conjunct(engine, var, pieces))
            })
        }))
    })
}

fn eliminate_conjunct(engine: &Engine, var: &str, pieces: Vec<Piece>) -> RFormula {
    let mut residue: Vec<RFormula> = Vec::new();
    let mut x_lits: Vec<RLit> = Vec::new();
    for p in pieces {
        match p {
            Piece::Opaque(f) => residue.push(f),
            Piece::Lit((sign, a)) => {
                if a.mentions(var) {
                    x_lits.push((sign, a));
                } else {
                    let atom = RFormula::Atom(a);
                    residue.push(if sign { atom } else { RFormula::not(atom) });
                }
            }
        }
    }
    let residue = RFormula::and(residue);
    if x_lits.is_empty() {
        return residue;
    }
    let sorts = [Sort::Machine, Sort::Word, Sort::Trace, Sort::Other];
    let branches =
        engine.parallel_map(&sorts, |sort| eliminate_sorted(engine, var, *sort, &x_lits));
    RFormula::and([RFormula::or(branches), residue])
}

/// `∃x (sort(x) = S ∧ ⋀ lits)`, eliminated.
fn eliminate_sorted(engine: &Engine, var: &str, sort: Sort, lits: &[RLit]) -> RFormula {
    // Step 1: collapse w(x)/m(x) for non-trace sorts, then split literals
    // into x-free residue and sort-specific constraint shapes.
    let collapse = |t: &RTerm| -> RTerm {
        if sort != Sort::Trace {
            match t {
                RTerm::WOf(v) | RTerm::MOf(v) if v == var => RTerm::Lit(String::new()),
                other => other.clone(),
            }
        } else {
            t.clone()
        }
    };

    let mut residue: Vec<RFormula> = Vec::new();
    let mut neq_x: Vec<RTerm> = Vec::new();
    let mut prefix_x: Vec<String> = Vec::new(); // B_s(x), sort W
    let mut prefix_w: Vec<String> = Vec::new(); // B_s(w(x)), sort T
    let mut de_on_x: DESystem = DESystem::default(); // D/E(x, const), sort M
    let mut de_on_m: Vec<(bool, usize, String)> = Vec::new(); // (exact?, i, word) on m(x), sort T
    let mut m_eqs: Vec<RTerm> = Vec::new();
    let mut m_neqs: Vec<RTerm> = Vec::new();
    let mut w_eqs: Vec<RTerm> = Vec::new();
    let mut w_neqs: Vec<RTerm> = Vec::new();
    let mut eq_x: Option<RTerm> = None; // positive x = t (t x-free)

    for (sign, atom) in lits {
        let atom = match atom {
            RAtom::IsSort(s, t) => RAtom::IsSort(*s, collapse(t)),
            RAtom::Prefix(s, t) => RAtom::Prefix(s.clone(), collapse(t)),
            RAtom::AtLeast(i, a, b) => RAtom::AtLeast(*i, collapse(a), collapse(b)),
            RAtom::Exact(i, a, b) => RAtom::Exact(*i, collapse(a), collapse(b)),
            RAtom::Eq(a, b) => RAtom::Eq(collapse(a), collapse(b)),
        };
        if !atom.mentions(var) {
            let f = RFormula::Atom(atom);
            residue.push(if *sign { f } else { RFormula::not(f) });
            continue;
        }
        // Shape analysis under the sort assumption.
        match (&atom, *sign) {
            (RAtom::IsSort(s, RTerm::Var(_)), sign) => {
                if (*s == sort) != sign {
                    return RFormula::False;
                }
            }
            (RAtom::IsSort(s, RTerm::WOf(_)), sign) => {
                // w(x) is a word for traces (and ε, a word, otherwise).
                if (*s == Sort::Word) != sign {
                    return RFormula::False;
                }
            }
            (RAtom::IsSort(s, RTerm::MOf(_)), sign) => {
                // Under sort T, m(x) is a valid machine.
                if (*s == Sort::Machine) != sign {
                    return RFormula::False;
                }
            }
            (RAtom::Prefix(s, RTerm::Var(_)), sign) => {
                if sort == Sort::Word {
                    if sign {
                        prefix_x.push(s.clone());
                    } else {
                        unreachable!("positive() removed negated prefixes");
                    }
                } else if sign {
                    return RFormula::False;
                }
            }
            (RAtom::Prefix(s, RTerm::WOf(_)), true) => prefix_w.push(s.clone()),
            (RAtom::Prefix(_, RTerm::MOf(_)), true) => {
                // m(x) is a machine under sort T: never a word.
                return RFormula::False;
            }
            (RAtom::Prefix(..), false) => {
                unreachable!("positive() removed negated prefixes")
            }
            (RAtom::AtLeast(i, a, b) | RAtom::Exact(i, a, b), true) => {
                let exact = matches!(atom, RAtom::Exact(..));
                let word = match b.value() {
                    Some(w) if fq_turing::sym::classify(w) == Sort::Word => w.to_string(),
                    Some(_) => return RFormula::False, // constant non-word
                    None => unreachable!("expand_word_arguments made word args constant"),
                };
                match a {
                    RTerm::Var(_) => {
                        // x itself as the machine: only sort M.
                        if sort != Sort::Machine {
                            return RFormula::False;
                        }
                        if exact {
                            de_on_x.exactly.push((word, *i));
                        } else {
                            de_on_x.at_least.push((word, *i));
                        }
                    }
                    RTerm::MOf(_) => de_on_m.push((exact, *i, word)),
                    RTerm::WOf(_) | RTerm::Lit(_) => {
                        // w(x) (a word) or a constant that still mentions…
                        // a word is never a machine.
                        return RFormula::False;
                    }
                }
            }
            (RAtom::AtLeast(..) | RAtom::Exact(..), false) => {
                unreachable!("positive() removed negated D/E atoms")
            }
            (RAtom::IsSort(_, RTerm::Lit(_)), _) | (RAtom::Prefix(_, RTerm::Lit(_)), _) => {
                unreachable!("literal-argument atoms are x-free and handled above")
            }
            (RAtom::Eq(a, b), sign) => match resolve_equality(var, sort, a, b, sign) {
                EqShape::Bool(v) => {
                    if !v {
                        return RFormula::False;
                    }
                }
                EqShape::EqX(t) => match &eq_x {
                    None => eq_x = Some(t),
                    Some(prev) => {
                        residue.push(RFormula::Atom(RAtom::Eq(prev.clone(), t)));
                    }
                },
                EqShape::NeqX(t) => neq_x.push(t),
                EqShape::MEq(t) => m_eqs.push(t),
                EqShape::MNeq(t) => m_neqs.push(t),
                EqShape::WEq(t) => w_eqs.push(t),
                EqShape::WNeq(t) => w_neqs.push(t),
            },
        }
    }

    // Positive x = t: substitute t for x in the original literals and add
    // the sort constraint (the paper: "we can simply substitute t for x").
    if let Some(t) = eq_x {
        let mut parts = vec![RFormula::Atom(RAtom::IsSort(sort, t.clone()))];
        for (sign, atom) in lits {
            let substituted = RFormula::Atom(atom.subst(var, &t));
            parts.push(if *sign {
                substituted
            } else {
                RFormula::not(substituted)
            });
        }
        parts.push(RFormula::and(residue));
        return RFormula::and(parts);
    }

    // Merge positive prefixes (paper, Case W: "any conjunction
    // B_{s1}(x) ∧ … ∧ B_{sr}(x) is either equivalent to one of its
    // members, or it is false").
    let merged_w_prefix = match merge_prefixes(&prefix_w) {
        Some(p) => p,
        None => return RFormula::False,
    };
    if merge_prefixes(&prefix_x).is_none() {
        return RFormula::False;
    }

    let result = match sort {
        // Case O: only inequalities can constrain x; O is infinite.
        Sort::Other => RFormula::True,
        // Case W: a consistent merged prefix leaves infinitely many words.
        Sort::Word => RFormula::True,
        // Case M: Lemma A.2; satisfiable systems have infinitely many
        // machine witnesses, absorbing the inequalities.
        Sort::Machine => {
            if de_on_x.satisfiable() {
                RFormula::True
            } else {
                RFormula::False
            }
        }
        Sort::Trace => eliminate_trace_case(
            engine,
            var,
            &m_eqs,
            &m_neqs,
            &w_eqs,
            &w_neqs,
            &de_on_m,
            &merged_w_prefix,
            &neq_x,
            &mut residue,
        ),
    };
    RFormula::and([result, RFormula::and(residue)])
}

enum EqShape {
    Bool(bool),
    EqX(RTerm),
    NeqX(RTerm),
    MEq(RTerm),
    MNeq(RTerm),
    WEq(RTerm),
    WNeq(RTerm),
}

/// Classify an equality literal mentioning `x` under a sort assumption.
/// Terms have already been collapsed for non-trace sorts.
fn resolve_equality(var: &str, sort: Sort, a: &RTerm, b: &RTerm, sign: bool) -> EqShape {
    let is_x = |t: &RTerm| matches!(t, RTerm::Var(v) if v == var);
    let is_wx = |t: &RTerm| matches!(t, RTerm::WOf(v) if v == var);
    let is_mx = |t: &RTerm| matches!(t, RTerm::MOf(v) if v == var);
    let x_free = |t: &RTerm| !t.mentions(var);

    // Both sides mention x.
    if a.mentions(var) && b.mentions(var) {
        let equal_shapes = (is_x(a) && is_x(b)) || (is_wx(a) && is_wx(b)) || (is_mx(a) && is_mx(b));
        if equal_shapes {
            return EqShape::Bool(sign);
        }
        // Distinct shapes under sort T denote elements of different sorts
        // (trace vs word vs machine), hence never equal.
        debug_assert_eq!(sort, Sort::Trace, "non-T sorts were collapsed");
        return EqShape::Bool(!sign);
    }

    let (x_side, other) = if a.mentions(var) { (a, b) } else { (b, a) };
    debug_assert!(x_free(other));
    if is_x(x_side) {
        return if sign {
            EqShape::EqX(other.clone())
        } else {
            EqShape::NeqX(other.clone())
        };
    }
    if is_wx(x_side) {
        return if sign {
            EqShape::WEq(other.clone())
        } else {
            EqShape::WNeq(other.clone())
        };
    }
    debug_assert!(is_mx(x_side));
    if sign {
        EqShape::MEq(other.clone())
    } else {
        EqShape::MNeq(other.clone())
    }
}

/// Merge padded prefixes; `None` on conflict.
fn merge_prefixes(prefixes: &[String]) -> Option<String> {
    let max_len = prefixes.iter().map(|p| p.len()).max().unwrap_or(0);
    let mut merged = Vec::with_capacity(max_len);
    for k in 0..max_len {
        // B_s only constrains positions below |s|; prefixes cover the
        // initial segment [0, |s|), so every position up to max_len is
        // constrained by at least one prefix.
        let mut c: Option<u8> = None;
        for p in prefixes {
            let Some(&pc) = p.as_bytes().get(k) else {
                continue;
            };
            match c {
                None => c = Some(pc),
                Some(prev) if prev != pc => return None,
                _ => {}
            }
        }
        merged.push(c.expect("position below max_len is covered"));
    }
    Some(String::from_utf8(merged).expect("ASCII"))
}

/// Case T of the elimination (subcases T−1 … T−4).
#[allow(clippy::too_many_arguments)]
fn eliminate_trace_case(
    engine: &Engine,
    _var: &str,
    m_eqs: &[RTerm],
    m_neqs: &[RTerm],
    w_eqs: &[RTerm],
    w_neqs: &[RTerm],
    de_on_m: &[(bool, usize, String)],
    merged_w_prefix: &str,
    neq_x: &[RTerm],
    residue: &mut Vec<RFormula>,
) -> RFormula {
    // Multiple equalities collapse to the first plus equations in the
    // residue ("different equalities of this form can be eliminated").
    let m_eq = m_eqs.first().cloned();
    for extra in m_eqs.iter().skip(1) {
        residue.push(RFormula::Atom(RAtom::Eq(
            m_eq.clone().expect("first exists"),
            extra.clone(),
        )));
    }
    let w_eq = w_eqs.first().cloned();
    for extra in w_eqs.iter().skip(1) {
        residue.push(RFormula::Atom(RAtom::Eq(
            w_eq.clone().expect("first exists"),
            extra.clone(),
        )));
    }

    match (m_eq, w_eq) {
        // T−1: satisfiability of the D/E system decides; everything else
        // is absorbed by the infinitude of machines, words, and traces.
        (None, None) => {
            let sys = DESystem {
                at_least: de_on_m
                    .iter()
                    .filter(|(e, ..)| !e)
                    .map(|(_, i, w)| (w.clone(), *i))
                    .collect(),
                exactly: de_on_m
                    .iter()
                    .filter(|(e, ..)| *e)
                    .map(|(_, i, w)| (w.clone(), *i))
                    .collect(),
            };
            if sys.satisfiable() {
                RFormula::True
            } else {
                RFormula::False
            }
        }
        // T−2: the machine is concrete; substitute it.
        (Some(t), None) => {
            let mut parts = vec![RFormula::Atom(RAtom::IsSort(Sort::Machine, t.clone()))];
            for (exact, i, w) in de_on_m {
                let atom = if *exact {
                    RAtom::Exact(*i, t.clone(), RTerm::Lit(w.clone()))
                } else {
                    RAtom::AtLeast(*i, t.clone(), RTerm::Lit(w.clone()))
                };
                parts.push(RFormula::Atom(atom));
            }
            for s in m_neqs {
                parts.push(RFormula::not(RFormula::Atom(RAtom::Eq(
                    t.clone(),
                    s.clone(),
                ))));
            }
            // Words matching the prefix are plentiful; w-inequalities and
            // trace-inequalities are absorbed.
            let _ = (merged_w_prefix, w_neqs, neq_x);
            RFormula::and(parts)
        }
        // T−3: the word is concrete; the machine is still free.
        (None, Some(v)) => {
            let sys = DESystem {
                at_least: de_on_m
                    .iter()
                    .filter(|(e, ..)| !e)
                    .map(|(_, i, w)| (w.clone(), *i))
                    .collect(),
                exactly: de_on_m
                    .iter()
                    .filter(|(e, ..)| *e)
                    .map(|(_, i, w)| (w.clone(), *i))
                    .collect(),
            };
            if !sys.satisfiable() {
                return RFormula::False;
            }
            let mut parts = vec![RFormula::Atom(RAtom::IsSort(Sort::Word, v.clone()))];
            if !merged_w_prefix.is_empty() {
                parts.push(RFormula::Atom(RAtom::Prefix(
                    merged_w_prefix.to_string(),
                    v.clone(),
                )));
            }
            for y in w_neqs {
                parts.push(RFormula::not(RFormula::Atom(RAtom::Eq(
                    v.clone(),
                    y.clone(),
                ))));
            }
            RFormula::and(parts)
        }
        // T−4: both concrete — the combinatorial pattern disjunction
        // ending in D_{n+1}(t, v).
        (Some(t), Some(v)) => {
            let mut parts = vec![
                RFormula::Atom(RAtom::IsSort(Sort::Machine, t.clone())),
                RFormula::Atom(RAtom::IsSort(Sort::Word, v.clone())),
            ];
            for (exact, i, w) in de_on_m {
                let atom = if *exact {
                    RAtom::Exact(*i, t.clone(), RTerm::Lit(w.clone()))
                } else {
                    RAtom::AtLeast(*i, t.clone(), RTerm::Lit(w.clone()))
                };
                parts.push(RFormula::Atom(atom));
            }
            for s in m_neqs {
                parts.push(RFormula::not(RFormula::Atom(RAtom::Eq(
                    t.clone(),
                    s.clone(),
                ))));
            }
            for y in w_neqs {
                parts.push(RFormula::not(RFormula::Atom(RAtom::Eq(
                    v.clone(),
                    y.clone(),
                ))));
            }
            if !merged_w_prefix.is_empty() {
                parts.push(RFormula::Atom(RAtom::Prefix(
                    merged_w_prefix.to_string(),
                    v.clone(),
                )));
            }
            parts.push(excluded_traces_disjunction(engine, &t, &v, neq_x));
            RFormula::and(parts)
        }
    }
}

/// `∃x (m(x) = t ∧ w(x) = v ∧ ⋀ x ≠ pᵢ)`: there must be strictly more
/// traces of `t` in `v` than excluded elements that actually *are* such
/// traces. Enumerates, per the paper, "all possible combinations of the
/// true–false assertions about the machines [and words] of p₁ … p_n" and
/// the equality patterns among them.
#[allow(clippy::needless_range_loop)]
fn excluded_traces_disjunction(engine: &Engine, t: &RTerm, v: &RTerm, ps: &[RTerm]) -> RFormula {
    if ps.is_empty() {
        // D_1(t, v) holds whenever t is a machine and v a word — already
        // asserted by the caller.
        return RFormula::True;
    }
    let n = ps.len();
    let is_trace_of = |p: &RTerm| {
        RFormula::and([
            RFormula::Atom(RAtom::IsSort(Sort::Trace, p.clone())),
            RFormula::Atom(RAtom::Eq(RTerm::m_of(p.clone()), t.clone())),
            RFormula::Atom(RAtom::Eq(RTerm::w_of(p.clone()), v.clone())),
        ])
    };
    // Status bitmap: which pᵢ are traces of t in v. The 2^n bitmaps are
    // independent, so each one's partition disjuncts are built on a worker
    // and flattened back in bitmap order.
    let statuses: Vec<u32> = (0..1u32 << n).collect();
    let per_status = engine.parallel_map(&statuses, |&status| {
        let yes: Vec<usize> = (0..n).filter(|i| status & (1 << i) != 0).collect();
        let mut base = Vec::new();
        for i in 0..n {
            let f = is_trace_of(&ps[i]);
            base.push(if yes.contains(&i) {
                f
            } else {
                RFormula::not(f)
            });
        }
        // Partitions of the yes-set into equality classes.
        let mut disjuncts = Vec::new();
        for partition in set_partitions(yes.len()) {
            let k = partition.iter().copied().max().map_or(0, |m| m + 1);
            let mut conj = base.clone();
            for a in 0..yes.len() {
                for b in a + 1..yes.len() {
                    let eq = RFormula::Atom(RAtom::Eq(ps[yes[a]].clone(), ps[yes[b]].clone()));
                    conj.push(if partition[a] == partition[b] {
                        eq
                    } else {
                        RFormula::not(eq)
                    });
                }
            }
            // k distinct excluded traces: need at least k + 1 traces.
            if k + 1 >= 2 {
                conj.push(RFormula::Atom(RAtom::AtLeast(k + 1, t.clone(), v.clone())));
            }
            disjuncts.push(RFormula::and(conj));
        }
        disjuncts
    });
    RFormula::or(per_status.into_iter().flatten())
}

/// All set partitions of `{0, …, n−1}` as restricted-growth strings.
fn set_partitions(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut current = vec![0usize; n];
    fn rec(current: &mut Vec<usize>, pos: usize, max_used: usize, out: &mut Vec<Vec<usize>>) {
        if pos == current.len() {
            out.push(current.clone());
            return;
        }
        for c in 0..=max_used + 1 {
            current[pos] = c;
            rec(current, pos + 1, max_used.max(c), out);
        }
    }
    // Position 0 is always class 0.
    current[0] = 0;
    rec(&mut current, 1, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traces::rterm::from_logic;
    use fq_logic::parse_formula;
    use fq_turing::builders;
    use fq_turing::encode::encode_machine;
    use fq_turing::trace::trace_string;

    fn decide_str(s: &str) -> bool {
        let f = from_logic(&parse_formula(s).unwrap()).unwrap();
        decide(&f).unwrap()
    }

    #[test]
    fn set_partition_counts_are_bell_numbers() {
        assert_eq!(set_partitions(0).len(), 1);
        assert_eq!(set_partitions(1).len(), 1);
        assert_eq!(set_partitions(2).len(), 2);
        assert_eq!(set_partitions(3).len(), 5);
        assert_eq!(set_partitions(4).len(), 15);
    }

    #[test]
    fn words_of_length_enumeration() {
        assert_eq!(words_of_length(0), vec![String::new()]);
        assert_eq!(words_of_length(2).len(), 4);
    }

    #[test]
    fn merge_prefixes_cases() {
        assert_eq!(merge_prefixes(&[]), Some(String::new()));
        assert_eq!(
            merge_prefixes(&["1".into(), "1&1".into()]),
            Some("1&1".into())
        );
        // "1" pads to 1&…, consistent with "1&".
        assert_eq!(
            merge_prefixes(&["1".into(), "1&".into()]),
            Some("1&".into())
        );
        assert_eq!(merge_prefixes(&["11".into(), "1&".into()]), None);
    }

    #[test]
    fn sorts_partition_the_domain() {
        assert!(decide_str("forall x. M(x) | W(x) | T(x) | O(x)"));
        assert!(decide_str("forall x. !(M(x) & W(x))"));
        assert!(decide_str("forall x. !(T(x) & W(x))"));
    }

    #[test]
    fn each_sort_is_inhabited() {
        for s in [
            "exists x. M(x)",
            "exists x. W(x)",
            "exists x. T(x)",
            "exists x. O(x)",
        ] {
            assert!(decide_str(s), "{s}");
        }
    }

    #[test]
    fn every_machine_has_a_trace_in_every_word() {
        assert!(decide_str(
            "forall m0 w0. M(m0) & W(w0) -> exists p. P(m0, w0, p)"
        ));
    }

    #[test]
    fn traces_have_machines_and_words() {
        assert!(decide_str("forall p. T(p) -> M(m(p)) & W(w(p))"));
        assert!(decide_str("forall p. T(p) -> P(m(p), w(p), p)"));
    }

    #[test]
    fn non_traces_have_epsilon_projections() {
        assert!(decide_str("forall x. W(x) -> w(x) = \"\" & m(x) = \"\""));
    }

    #[test]
    fn ground_p_atoms() {
        let m = builders::scan_right_halt_on_blank();
        let enc = encode_machine(&m);
        let tr = trace_string(&m, "11", 2).unwrap();
        assert!(decide_str(&format!("P(\"{enc}\", \"11\", \"{tr}\")")));
        assert!(!decide_str(&format!("P(\"{enc}\", \"1\", \"{tr}\")")));
    }

    #[test]
    fn existential_machine_with_trace_counts() {
        // Lemma A.2-style: a machine with ≥3 traces in 111111 and exactly
        // 2 in &&&&&&.
        assert!(decide_str(
            "exists x. D(3, x, \"111111\") & E(2, x, \"&&&&&&\")"
        ));
        // Conflict: ≥5 in v but exactly 3 in u with equal 3-prefixes.
        assert!(!decide_str(
            "exists x. D(5, x, \"111111\") & E(3, x, \"111&&&\")"
        ));
    }

    #[test]
    fn halting_machine_has_finitely_many_traces() {
        let m = builders::scan_right_halt_on_blank();
        let enc = encode_machine(&m);
        // Exactly 3 traces in "11": ∃p P ∧ ... bounded by D_4 failing.
        assert!(decide_str(&format!("D(3, \"{enc}\", \"11\")")));
        assert!(!decide_str(&format!("D(4, \"{enc}\", \"11\")")));
        // ∃p: there is a trace of enc in "11" different from two given ones.
        let t1 = trace_string(&m, "11", 1).unwrap();
        let t2 = trace_string(&m, "11", 2).unwrap();
        assert!(decide_str(&format!(
            "exists p. P(\"{enc}\", \"11\", p) & p != \"{t1}\" & p != \"{t2}\""
        )));
        // …but not different from all three.
        let t3 = trace_string(&m, "11", 3).unwrap();
        assert!(!decide_str(&format!(
            "exists p. P(\"{enc}\", \"11\", p) & p != \"{t1}\" & p != \"{t2}\" & p != \"{t3}\""
        )));
    }

    #[test]
    fn looper_has_unboundedly_many_traces() {
        let enc = encode_machine(&builders::looper());
        let tr = trace_string(&builders::looper(), "1", 1).unwrap();
        // For any trace there is another one (in the same word).
        assert!(decide_str(&format!(
            "exists p. P(\"{enc}\", \"1\", p) & p != \"{tr}\""
        )));
        assert!(decide_str(&format!("D(25, \"{enc}\", \"1\")")));
    }

    #[test]
    fn prefix_predicate_via_b() {
        assert!(decide_str("exists x. B(\"11\", x) & x != \"11\""));
        assert!(decide_str("forall x. B(\"1\", x) -> W(x)"));
        // ¬∃ word with both 1- and &-prefix.
        assert!(!decide_str("exists x. B(\"1\", x) & B(\"&\", x)"));
    }

    #[test]
    fn quantifier_alternation_over_sorts() {
        // Every word has a machine with exactly one trace in it (the
        // empty machine halts immediately everywhere).
        assert!(decide_str("forall y. W(y) -> exists x. E(1, x, y)"));
        // No machine has exactly one trace in every word AND at least two
        // in some word with the same 1-prefix — via concrete words.
        assert!(!decide_str("exists x. E(1, x, \"1&\") & D(2, x, \"1&\")"));
    }

    #[test]
    fn eliminated_formulas_are_quantifier_free() {
        for s in [
            "exists x. M(x) & x != \"1*1&1&11*\"",
            "exists p. P(y, z, p) & p != q",
            "forall x. B(\"1\", x) -> exists y. y != x & B(\"1\", y)",
        ] {
            let f = from_logic(&parse_formula(s).unwrap()).unwrap();
            let e = eliminate(&f);
            assert!(e.is_quantifier_free(), "{s}");
        }
    }

    #[test]
    fn theorem_3_1_formula_shape_is_decidable() {
        // The Theorem 3.1 sentence for a concrete machine and candidate:
        // ∀z∀x (P(M, z, x) ↔ φ(x, z)) with φ = P(M, z, x) itself — true.
        let enc = encode_machine(&builders::halter());
        assert!(decide_str(&format!(
            "forall z x. P(\"{enc}\", z, x) <-> P(\"{enc}\", z, x)"
        )));
        // And with a different machine on the right — false (they differ
        // on some trace).
        let enc2 = encode_machine(&builders::looper());
        assert!(!decide_str(&format!(
            "forall z x. P(\"{enc}\", z, x) <-> P(\"{enc2}\", z, x)"
        )));
    }

    #[test]
    fn multiple_m_equalities_force_parameter_equality() {
        // ∃x (T(x) ∧ m(x) = y ∧ m(x) = z) ⟺ M(y) ∧ y = z.
        assert!(decide_str(
            "forall y z. (exists x. T(x) & m(x) = y & m(x) = z) -> y = z"
        ));
        assert!(!decide_str(
            "exists y z. y != z & (exists x. T(x) & m(x) = y & m(x) = z)"
        ));
    }

    #[test]
    fn negated_prefix_rewrites() {
        // Words not starting with 1 exist.
        assert!(decide_str("exists x. W(x) & !B(\"1\", x)"));
        // Every word satisfies B_1 or B_& (ε pads to &&&…).
        assert!(decide_str("forall x. W(x) -> B(\"1\", x) | B(\"&\", x)"));
        // But no word satisfies both.
        assert!(!decide_str("exists x. B(\"1\", x) & B(\"&\", x)"));
    }

    #[test]
    fn d_with_function_second_argument() {
        // m(y) is ε (a word) for non-traces, a machine for traces.
        assert!(decide_str("exists y x. D(2, x, m(y))"));
        assert!(decide_str("forall y. T(y) -> !(exists x. D(2, x, m(y)))"));
    }

    #[test]
    fn e_on_own_word() {
        // Traces of machines that halt immediately on their own input
        // word exist (any 1-snapshot trace of the empty machine).
        assert!(decide_str("exists p. T(p) & E(1, m(p), w(p))"));
        // And traces of machines with ≥ 3 traces in their own word exist.
        assert!(decide_str("exists p. T(p) & D(3, m(p), w(p))"));
    }

    #[test]
    fn other_sort_with_inequalities() {
        assert!(decide_str("exists x. O(x) & x != \"#\" & x != \"##\""));
        assert!(decide_str("forall y. exists x. O(x) & x != y"));
    }

    #[test]
    fn positive_equality_substitution_path() {
        // ∃x (x = "1&" ∧ W(x) ∧ B("1", x)) folds by substitution.
        assert!(decide_str("exists x. x = \"1&\" & W(x) & B(\"1\", x)"));
        assert!(!decide_str("exists x. x = \"1&\" & M(x)"));
        // Substitution with a parameter: ∀y (∃x (x = y ∧ T(x)) ↔ T(y)).
        assert!(decide_str("forall y. (exists x. x = y & T(x)) <-> T(y)"));
    }

    #[test]
    fn nested_function_equalities_fold() {
        // w(w(p)) = ε always.
        assert!(decide_str("forall p. w(w(p)) = \"\""));
        assert!(decide_str("forall p. m(m(p)) = \"\""));
    }

    #[test]
    fn t4_pattern_counts_excluded_traces() {
        // halter has exactly 1 trace per word; excluding that trace
        // leaves none.
        let m = builders::halter();
        let enc = encode_machine(&m);
        let tr = trace_string(&m, "1", 1).unwrap();
        assert!(!decide_str(&format!(
            "exists p. P(\"{enc}\", \"1\", p) & p != \"{tr}\""
        )));
        // Excluding an unrelated string changes nothing.
        assert!(decide_str(&format!(
            "exists p. P(\"{enc}\", \"1\", p) & p != \"##\""
        )));
    }
}
