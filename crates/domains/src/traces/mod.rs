//! The trace domain **T** of Section 3 and its Reach theory.
//!
//! The domain is the set of all strings over the four-letter alphabet
//! `{1, &, *, #}`; the only signature predicate is the ternary `P(M, w, p)`
//! ("p is a trace of machine M in word w"), plus equality and constants
//! for every string. Despite encoding *all possible computations*, the
//! first-order theory is decidable (Corollary A.4) — this module's
//! [`TraceDomain::decide`] implements that decision procedure via the
//! quantifier elimination of Theorem A.3 in [`qe`].

pub mod ground;
pub mod lemma_a2;
pub mod qe;
pub mod rterm;

pub use lemma_a2::DESystem;
pub use rterm::{from_logic, RAtom, RFormula, RTerm};

use crate::domain::{require_sentence, DecidableTheory, Domain, DomainError};
use fq_engine::Engine;
use fq_logic::{Formula, Term};

/// The trace domain **T**.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceDomain;

impl TraceDomain {
    /// Compute a quantifier-free Reach-theory equivalent of a formula.
    pub fn quantifier_eliminate(&self, f: &Formula) -> Result<RFormula, DomainError> {
        self.quantifier_eliminate_with(f, &Engine::sequential())
    }

    /// [`TraceDomain::quantifier_eliminate`] through a shared [`Engine`].
    pub fn quantifier_eliminate_with(
        &self,
        f: &Formula,
        engine: &Engine,
    ) -> Result<RFormula, DomainError> {
        Ok(qe::eliminate_with(engine, &from_logic(f)?))
    }
}

/// Canonical enumeration of all strings over `{1, &, *, #}` by length,
/// then lexicographically.
pub fn enumerate_strings(n: usize) -> Vec<String> {
    const ALPHABET: [char; 4] = ['1', '&', '*', '#'];
    let mut out = Vec::with_capacity(n);
    let mut layer = vec![String::new()];
    while out.len() < n {
        for s in &layer {
            out.push(s.clone());
            if out.len() == n {
                return out;
            }
        }
        let mut next = Vec::with_capacity(layer.len() * 4);
        for s in &layer {
            for c in ALPHABET {
                next.push(format!("{s}{c}"));
            }
        }
        layer = next;
    }
    out
}

impl Domain for TraceDomain {
    type Elem = String;

    fn name(&self) -> String {
        "T (the domain of traces)".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<String> {
        enumerate_strings(n)
    }

    fn elem_term(&self, e: &String) -> Term {
        Term::Str(e.clone())
    }

    fn parse_elem(&self, t: &Term) -> Option<String> {
        match t {
            Term::Str(s) if fq_turing::sym::in_domain_alphabet(s) => Some(s.clone()),
            _ => None,
        }
    }

    /// Guided candidates for query answering: the query's string literals,
    /// their `w`/`m` projections, and — for every machine literal × word
    /// literal pair — the traces of the machine in the word (up to 256
    /// snapshots). The answers of the Section 3 queries `P(M, c, x)` are
    /// exactly such traces.
    fn guided_elements(&self, query: &Formula) -> Vec<String> {
        use fq_turing::decode_machine;
        use fq_turing::sym::{classify, Sort};
        use fq_turing::trace::trace_string;
        let (_, strs) = query.literal_constants();
        let mut out: Vec<String> = Vec::new();
        let mut machines = Vec::new();
        let mut words = vec![String::new()];
        for s in &strs {
            out.push(s.clone());
            match classify(s) {
                Sort::Machine => {
                    if let Some(m) = decode_machine(s) {
                        machines.push(m);
                    }
                }
                Sort::Word => words.push(s.clone()),
                Sort::Trace => {
                    if let Some(info) = fq_turing::trace::validate_trace(s) {
                        out.push(info.machine_str.clone());
                        out.push(info.word.clone());
                        machines.push(info.machine);
                        words.push(info.word);
                    }
                }
                Sort::Other => {}
            }
        }
        for m in &machines {
            for w in &words {
                for k in 1..=256 {
                    match trace_string(m, w, k) {
                        Some(t) => out.push(t),
                        None => break,
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl DecidableTheory for TraceDomain {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        self.decide_with(sentence, &Engine::sequential())
    }

    fn decide_with(&self, sentence: &Formula, engine: &Engine) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        qe::decide_with(engine, &from_logic(sentence)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    #[test]
    fn enumeration_starts_with_short_strings() {
        let e = enumerate_strings(6);
        assert_eq!(e, vec!["", "1", "&", "*", "#", "11"]);
    }

    #[test]
    fn enumeration_has_no_duplicates() {
        let e = enumerate_strings(500);
        let set: std::collections::BTreeSet<_> = e.iter().collect();
        assert_eq!(set.len(), e.len());
    }

    #[test]
    fn domain_trait_basics() {
        let d = TraceDomain;
        assert_eq!(d.elem_term(&"1&".to_string()), Term::Str("1&".into()));
        assert_eq!(
            d.parse_elem(&Term::Str("1*".into())),
            Some("1*".to_string())
        );
        assert_eq!(d.parse_elem(&Term::Str("abc".into())), None);
        assert_eq!(d.parse_elem(&Term::Nat(3)), None);
    }

    #[test]
    fn decide_simple_sentences() {
        assert!(TraceDomain
            .decide(&parse_formula("exists x. x = \"1&\"").unwrap())
            .unwrap());
        assert!(TraceDomain
            .decide(&parse_formula("forall x. x = x").unwrap())
            .unwrap());
        assert!(!TraceDomain
            .decide(&parse_formula("exists x. x != x").unwrap())
            .unwrap());
    }

    #[test]
    fn decide_rejects_open_formulas() {
        assert!(TraceDomain
            .decide(&parse_formula("P(x, y, z)").unwrap())
            .is_err());
    }
}
