//! Lemma A.2: satisfiability of `D`/`E` constraint systems.
//!
//! Given constant words with demanded trace counts,
//!
//! > `(∃x)(D_{i₁}(x, v₁) ∧ … ∧ D_{i_k}(x, v_k) ∧ E_{j₁}(x, u₁) ∧ … ∧
//! > E_{j_l}(x, u_l))`
//!
//! "is true in the Reach Theory of Traces iff for no pair r, q … (1)
//! iᵣ > j_q and the prefixes of vᵣ and u_q of length j_q coincide; (2)
//! jᵣ > j_q and the prefixes of uᵣ and u_q of length j_q coincide."
//!
//! [`DESystem::satisfiable`] implements the arithmetic condition directly (with the
//! *padded* prefixes, which makes it correct for words shorter than the
//! indices too — the lemma's length hypothesis becomes unnecessary);
//! [`DESystem::witness`] produces the explicit finite-automaton machine via
//! `fq_turing::builders::trie_machine`, and the `fq-domains` property
//! tests check the two agree.

use fq_turing::builders::{trie_machine, TrieSpec};
use fq_turing::Machine;

/// A `D`/`E` system over constant words.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DESystem {
    /// `(v, i)`: at least `i` traces in `v` (`D_i(x, v)`).
    pub at_least: Vec<(String, usize)>,
    /// `(u, j)`: exactly `j` traces in `u` (`E_j(x, u)`).
    pub exactly: Vec<(String, usize)>,
}

impl DESystem {
    /// The padded character of `w` at position `k` (`&` beyond the end).
    fn padded(w: &str, k: usize) -> u8 {
        w.as_bytes().get(k).copied().unwrap_or(b'&')
    }

    /// Padded prefixes of length `n` coincide.
    fn prefixes_coincide(a: &str, b: &str, n: usize) -> bool {
        (0..n).all(|k| Self::padded(a, k) == Self::padded(b, k))
    }

    /// The paper's satisfiability criterion.
    pub fn satisfiable(&self) -> bool {
        // E_0 is never satisfiable: there is always at least one trace.
        if self.exactly.iter().any(|(_, j)| *j == 0) {
            return false;
        }
        // Condition (1): i_r > j_q with coinciding j_q-prefixes of v_r, u_q.
        for (v, i) in &self.at_least {
            for (u, j) in &self.exactly {
                if i > j && Self::prefixes_coincide(v, u, *j) {
                    return false;
                }
            }
        }
        // Condition (2): j_r > j_q with coinciding j_q-prefixes of u_r, u_q.
        for (ur, jr) in &self.exactly {
            for (uq, jq) in &self.exactly {
                if jr > jq && Self::prefixes_coincide(ur, uq, *jq) {
                    return false;
                }
            }
        }
        true
    }

    /// Construct the witness machine (the lemma's explicit construction),
    /// or `None` if the system is unsatisfiable.
    pub fn witness(&self) -> Option<Machine> {
        let spec = TrieSpec {
            at_least: self.at_least.clone(),
            exactly: self.exactly.clone(),
        };
        trie_machine(&spec).ok()
    }

    /// Whether the system mentions no constraints at all.
    pub fn is_empty(&self) -> bool {
        self.at_least.is_empty() && self.exactly.is_empty()
    }

    /// The largest index mentioned, or 0.
    pub fn max_index(&self) -> usize {
        self.at_least
            .iter()
            .chain(self.exactly.iter())
            .map(|(_, i)| *i)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_turing::trace::{has_at_least_traces, has_exactly_traces};

    fn sys(at_least: &[(&str, usize)], exactly: &[(&str, usize)]) -> DESystem {
        DESystem {
            at_least: at_least.iter().map(|(w, i)| (w.to_string(), *i)).collect(),
            exactly: exactly.iter().map(|(w, i)| (w.to_string(), *i)).collect(),
        }
    }

    #[test]
    fn empty_system_is_satisfiable() {
        let s = sys(&[], &[]);
        assert!(s.satisfiable());
        assert!(s.witness().is_some());
    }

    #[test]
    fn paper_condition_1_detected() {
        // i = 5 > j = 3 with coinciding 3-prefixes.
        let s = sys(&[("111111", 5)], &[("111&&&", 3)]);
        assert!(!s.satisfiable());
        assert!(s.witness().is_none());
    }

    #[test]
    fn paper_condition_2_detected() {
        let s = sys(&[], &[("111111", 5), ("111&&&", 3)]);
        assert!(!s.satisfiable());
        assert!(s.witness().is_none());
    }

    #[test]
    fn diverging_prefixes_are_fine() {
        let s = sys(&[("1&&&&&", 6)], &[("&11111", 4), ("11&&&&", 3)]);
        assert!(s.satisfiable());
        let m = s.witness().expect("witness must exist");
        assert!(has_at_least_traces(&m, "1&&&&&", 6));
        assert!(has_exactly_traces(&m, "&11111", 4));
        assert!(has_exactly_traces(&m, "11&&&&", 3));
    }

    #[test]
    fn e_zero_unsatisfiable() {
        let s = sys(&[], &[("11", 0)]);
        assert!(!s.satisfiable());
        assert!(s.witness().is_none());
    }

    #[test]
    fn equal_exact_indices_on_same_prefix_ok() {
        // E_3(x, u) twice with the same 3-prefix is consistent.
        let s = sys(&[], &[("111111", 3), ("1111&&", 3)]);
        assert!(s.satisfiable());
        let m = s.witness().unwrap();
        assert!(has_exactly_traces(&m, "111111", 3));
        assert!(has_exactly_traces(&m, "1111&&", 3));
    }

    #[test]
    fn at_least_below_exact_is_consistent() {
        // D_2 and E_4 on the same word: 4 ≥ 2, fine.
        let s = sys(&[("1111", 2)], &[("1111", 4)]);
        assert!(s.satisfiable());
        let m = s.witness().unwrap();
        assert!(has_at_least_traces(&m, "1111", 2));
        assert!(has_exactly_traces(&m, "1111", 4));
    }

    #[test]
    fn criterion_agrees_with_builder_on_short_words() {
        // Short words exercise the padded-prefix handling.
        let cases = [
            sys(&[("1", 4)], &[("1&&", 4)]),  // D_4 and E_4, same padded prefix
            sys(&[("1", 5)], &[("1&&", 4)]),  // D_5 > E_4, coinciding: unsat
            sys(&[], &[("1", 2), ("1&", 2)]), // same padded prefixes, equal j
        ];
        for (idx, s) in cases.iter().enumerate() {
            assert_eq!(
                s.satisfiable(),
                s.witness().is_some(),
                "case {idx}: criterion and builder disagree"
            );
        }
    }

    #[test]
    fn witness_satisfies_every_constraint() {
        let s = sys(&[("11&1", 3), ("&&&&", 2)], &[("1&11", 3), ("&1&1", 2)]);
        assert!(s.satisfiable());
        let m = s.witness().unwrap();
        for (v, i) in &s.at_least {
            assert!(has_at_least_traces(&m, v, *i), "D_{i}({v})");
        }
        for (u, j) in &s.exactly {
            assert!(has_exactly_traces(&m, u, *j), "E_{j}({u})");
        }
    }

    #[test]
    fn max_index() {
        assert_eq!(sys(&[("1", 7)], &[("&", 3)]).max_index(), 7);
        assert_eq!(sys(&[], &[]).max_index(), 0);
    }
}
