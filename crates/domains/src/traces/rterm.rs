//! Terms, atoms, and formulas of the **Reach Theory of Traces**.
//!
//! The Appendix extends the trace domain's signature so that quantifier
//! elimination goes through: four sort predicates `M, W, T, O`, the prefix
//! predicates `B_w`, the trace-counting predicates `D_i` ("at least i
//! different traces") and `E_i` ("exactly i"), and the two unary functions
//! `w(·)` and `m(·)` extracting a trace's input word and machine (both ε
//! on non-traces). All are recursive and first-order expressible in the
//! original signature; conversely, the original ternary predicate is
//! definable: `P(x, y, z) ⟺ T(z) ∧ m(z) = x ∧ w(z) = y`.

use crate::domain::DomainError;
use fq_logic::{Formula, Term};
use fq_turing::sym::Sort;
use fq_turing::trace::validate_trace;

/// A term of the Reach theory. The smart constructors [`RTerm::w_of`] and
/// [`RTerm::m_of`] collapse nested applications ("because of the
/// definition of the only two functions, any nested term always equals
/// ε") and fold ground arguments.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RTerm {
    /// A variable ranging over the whole domain (all four sorts).
    Var(String),
    /// A string constant over the alphabet `{1, &, *, #}`.
    Lit(String),
    /// `w(t)` — the input word of a trace, ε otherwise.
    WOf(String),
    /// `m(t)` — the machine of a trace, ε otherwise.
    MOf(String),
}

impl RTerm {
    /// `w(t)`, with nested-application collapse and ground folding.
    pub fn w_of(t: RTerm) -> RTerm {
        match t {
            RTerm::Var(v) => RTerm::WOf(v),
            RTerm::Lit(s) => RTerm::Lit(ground_w(&s)),
            // w(w(y)) = w(m(y)) = ε: the inner value is never a trace.
            RTerm::WOf(_) | RTerm::MOf(_) => RTerm::Lit(String::new()),
        }
    }

    /// `m(t)`, with nested-application collapse and ground folding.
    pub fn m_of(t: RTerm) -> RTerm {
        match t {
            RTerm::Var(v) => RTerm::MOf(v),
            RTerm::Lit(s) => RTerm::Lit(ground_m(&s)),
            RTerm::WOf(_) | RTerm::MOf(_) => RTerm::Lit(String::new()),
        }
    }

    /// The variable this term depends on, if any.
    pub fn var(&self) -> Option<&str> {
        match self {
            RTerm::Var(v) | RTerm::WOf(v) | RTerm::MOf(v) => Some(v),
            RTerm::Lit(_) => None,
        }
    }

    /// Whether the term mentions the variable.
    pub fn mentions(&self, var: &str) -> bool {
        self.var() == Some(var)
    }

    /// Substitute `replacement` for the variable `var`.
    pub fn subst(&self, var: &str, replacement: &RTerm) -> RTerm {
        match self {
            RTerm::Var(v) if v == var => replacement.clone(),
            RTerm::WOf(v) if v == var => RTerm::w_of(replacement.clone()),
            RTerm::MOf(v) if v == var => RTerm::m_of(replacement.clone()),
            other => other.clone(),
        }
    }

    /// Ground value, if constant.
    pub fn value(&self) -> Option<&str> {
        match self {
            RTerm::Lit(s) => Some(s),
            _ => None,
        }
    }

    /// Render as an `fq-logic` term.
    pub fn to_term(&self) -> Term {
        match self {
            RTerm::Var(v) => Term::var(v.clone()),
            RTerm::Lit(s) => Term::Str(s.clone()),
            RTerm::WOf(v) => Term::app1("w", Term::var(v.clone())),
            RTerm::MOf(v) => Term::app1("m", Term::var(v.clone())),
        }
    }
}

/// Ground `w(s)`.
pub fn ground_w(s: &str) -> String {
    validate_trace(s).map(|i| i.word).unwrap_or_default()
}

/// Ground `m(s)`.
pub fn ground_m(s: &str) -> String {
    validate_trace(s).map(|i| i.machine_str).unwrap_or_default()
}

/// An atom of the Reach theory.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RAtom {
    /// Sort membership `M(t)`, `W(t)`, `T(t)`, `O(t)`.
    IsSort(Sort, RTerm),
    /// `B_w(t)`: `t` is an input word and `w` is a prefix of `t·&^ω`.
    /// The subscript is always a constant word over `{1, &}`.
    Prefix(String, RTerm),
    /// `D_i(t, u)`: machine `t` has at least `i` different traces in
    /// word `u`.
    AtLeast(usize, RTerm, RTerm),
    /// `E_i(t, u)`: machine `t` has exactly `i` different traces in `u`.
    Exact(usize, RTerm, RTerm),
    /// Equality of domain elements.
    Eq(RTerm, RTerm),
}

impl RAtom {
    /// Whether the atom mentions the variable.
    pub fn mentions(&self, var: &str) -> bool {
        match self {
            RAtom::IsSort(_, t) | RAtom::Prefix(_, t) => t.mentions(var),
            RAtom::AtLeast(_, a, b) | RAtom::Exact(_, a, b) | RAtom::Eq(a, b) => {
                a.mentions(var) || b.mentions(var)
            }
        }
    }

    /// Substitute a term for a variable.
    pub fn subst(&self, var: &str, r: &RTerm) -> RAtom {
        match self {
            RAtom::IsSort(s, t) => RAtom::IsSort(*s, t.subst(var, r)),
            RAtom::Prefix(w, t) => RAtom::Prefix(w.clone(), t.subst(var, r)),
            RAtom::AtLeast(i, a, b) => RAtom::AtLeast(*i, a.subst(var, r), b.subst(var, r)),
            RAtom::Exact(i, a, b) => RAtom::Exact(*i, a.subst(var, r), b.subst(var, r)),
            RAtom::Eq(a, b) => RAtom::Eq(a.subst(var, r), b.subst(var, r)),
        }
    }
}

/// A formula of the Reach theory.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RFormula {
    True,
    False,
    Atom(RAtom),
    Not(Box<RFormula>),
    And(Vec<RFormula>),
    Or(Vec<RFormula>),
    Exists(String, Box<RFormula>),
    Forall(String, Box<RFormula>),
}

impl RFormula {
    /// Smart conjunction.
    pub fn and(fs: impl IntoIterator<Item = RFormula>) -> RFormula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                RFormula::True => {}
                RFormula::False => return RFormula::False,
                RFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => RFormula::True,
            1 => out.pop().expect("len checked"),
            _ => RFormula::And(out),
        }
    }

    /// Smart disjunction.
    pub fn or(fs: impl IntoIterator<Item = RFormula>) -> RFormula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                RFormula::False => {}
                RFormula::True => return RFormula::True,
                RFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => RFormula::False,
            1 => out.pop().expect("len checked"),
            _ => RFormula::Or(out),
        }
    }

    /// Smart negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: RFormula) -> RFormula {
        match f {
            RFormula::True => RFormula::False,
            RFormula::False => RFormula::True,
            RFormula::Not(inner) => *inner,
            other => RFormula::Not(Box::new(other)),
        }
    }

    /// Whether the formula is quantifier-free.
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            RFormula::True | RFormula::False | RFormula::Atom(_) => true,
            RFormula::Not(f) => f.is_quantifier_free(),
            RFormula::And(fs) | RFormula::Or(fs) => fs.iter().all(|f| f.is_quantifier_free()),
            RFormula::Exists(..) | RFormula::Forall(..) => false,
        }
    }

    /// Whether the formula mentions the variable freely.
    pub fn mentions(&self, var: &str) -> bool {
        match self {
            RFormula::True | RFormula::False => false,
            RFormula::Atom(a) => a.mentions(var),
            RFormula::Not(f) => f.mentions(var),
            RFormula::And(fs) | RFormula::Or(fs) => fs.iter().any(|f| f.mentions(var)),
            RFormula::Exists(v, f) | RFormula::Forall(v, f) => v != var && f.mentions(var),
        }
    }

    /// Substitute a term for a free variable.
    pub fn subst(&self, var: &str, r: &RTerm) -> RFormula {
        match self {
            RFormula::True | RFormula::False => self.clone(),
            RFormula::Atom(a) => RFormula::Atom(a.subst(var, r)),
            RFormula::Not(f) => RFormula::not(f.subst(var, r)),
            RFormula::And(fs) => RFormula::and(fs.iter().map(|f| f.subst(var, r))),
            RFormula::Or(fs) => RFormula::or(fs.iter().map(|f| f.subst(var, r))),
            RFormula::Exists(v, f) | RFormula::Forall(v, f) => {
                let is_exists = matches!(self, RFormula::Exists(..));
                if v == var {
                    return self.clone();
                }
                // Reach terms never introduce new variables besides the
                // replaced one's, and callers use fresh replacement vars;
                // keep it simple and assert no capture.
                debug_assert!(r.var() != Some(v.as_str()), "capture in RFormula::subst");
                let body = f.subst(var, r);
                if is_exists {
                    RFormula::Exists(v.clone(), Box::new(body))
                } else {
                    RFormula::Forall(v.clone(), Box::new(body))
                }
            }
        }
    }
}

impl std::fmt::Display for RTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RTerm::Var(v) => write!(f, "{v}"),
            RTerm::Lit(s) => write!(f, "\"{s}\""),
            RTerm::WOf(v) => write!(f, "w({v})"),
            RTerm::MOf(v) => write!(f, "m({v})"),
        }
    }
}

impl std::fmt::Display for RAtom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RAtom::IsSort(s, t) => {
                let name = match s {
                    Sort::Machine => "M",
                    Sort::Word => "W",
                    Sort::Trace => "T",
                    Sort::Other => "O",
                };
                write!(f, "{name}({t})")
            }
            RAtom::Prefix(w, t) => write!(f, "B_\"{w}\"({t})"),
            RAtom::AtLeast(i, a, b) => write!(f, "D_{i}({a}, {b})"),
            RAtom::Exact(i, a, b) => write!(f, "E_{i}({a}, {b})"),
            RAtom::Eq(a, b) => write!(f, "{a} = {b}"),
        }
    }
}

impl std::fmt::Display for RFormula {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RFormula::True => write!(f, "true"),
            RFormula::False => write!(f, "false"),
            RFormula::Atom(a) => write!(f, "{a}"),
            RFormula::Not(g) => write!(f, "!({g})"),
            RFormula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            RFormula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            RFormula::Exists(v, g) => write!(f, "exists {v}. {g}"),
            RFormula::Forall(v, g) => write!(f, "forall {v}. {g}"),
        }
    }
}

/// Check that a `B_w` subscript is a word over `{1, &}`.
pub fn check_word_subscript(w: &str) -> Result<(), DomainError> {
    if w.chars().all(|c| matches!(c, '1' | '&')) {
        Ok(())
    } else {
        Err(DomainError::SortMismatch {
            detail: format!("B-subscript \"{w}\" is not a word over {{1, &}}"),
        })
    }
}

/// Convert an `fq-logic` formula over the trace signature into an
/// [`RFormula`].
///
/// Accepted symbols: the ternary predicate `P(machine, word, trace)`;
/// sort predicates `M/W/T/O` (unary); `B(word-literal, t)`;
/// `D(i, t, u)` and `E(i, t, u)` with a numeral first argument;
/// functions `w(t)`, `m(t)`; string literals; equality.
pub fn from_logic(f: &Formula) -> Result<RFormula, DomainError> {
    match f {
        Formula::True => Ok(RFormula::True),
        Formula::False => Ok(RFormula::False),
        Formula::Eq(a, b) => Ok(RFormula::Atom(RAtom::Eq(conv_term(a)?, conv_term(b)?))),
        Formula::Pred(name, args) => conv_pred(name, args),
        Formula::Not(g) => Ok(RFormula::not(from_logic(g)?)),
        Formula::And(gs) => {
            let parts: Result<Vec<_>, _> = gs.iter().map(from_logic).collect();
            Ok(RFormula::and(parts?))
        }
        Formula::Or(gs) => {
            let parts: Result<Vec<_>, _> = gs.iter().map(from_logic).collect();
            Ok(RFormula::or(parts?))
        }
        Formula::Implies(a, b) => Ok(RFormula::or([
            RFormula::not(from_logic(a)?),
            from_logic(b)?,
        ])),
        Formula::Iff(a, b) => {
            let ca = from_logic(a)?;
            let cb = from_logic(b)?;
            Ok(RFormula::or([
                RFormula::and([ca.clone(), cb.clone()]),
                RFormula::and([RFormula::not(ca), RFormula::not(cb)]),
            ]))
        }
        Formula::Exists(v, g) => Ok(RFormula::Exists(v.clone(), Box::new(from_logic(g)?))),
        Formula::Forall(v, g) => Ok(RFormula::Forall(v.clone(), Box::new(from_logic(g)?))),
    }
}

fn conv_pred(name: &str, args: &[Term]) -> Result<RFormula, DomainError> {
    let sort = match name {
        "M" => Some(Sort::Machine),
        "W" => Some(Sort::Word),
        "T" => Some(Sort::Trace),
        "O" => Some(Sort::Other),
        _ => None,
    };
    if let Some(s) = sort {
        if args.len() != 1 {
            return Err(DomainError::UnsupportedSymbol {
                symbol: format!("{name}/{}", args.len()),
            });
        }
        return Ok(RFormula::Atom(RAtom::IsSort(s, conv_term(&args[0])?)));
    }
    match (name, args) {
        ("P", [m, w, p]) => {
            // P(x, y, z) ⟺ T(z) ∧ m(z) = x ∧ w(z) = y.
            let m = conv_term(m)?;
            let w = conv_term(w)?;
            let p = conv_term(p)?;
            Ok(RFormula::and([
                RFormula::Atom(RAtom::IsSort(Sort::Trace, p.clone())),
                RFormula::Atom(RAtom::Eq(RTerm::m_of(p.clone()), m)),
                RFormula::Atom(RAtom::Eq(RTerm::w_of(p), w)),
            ]))
        }
        ("B", [Term::Str(w), t]) => {
            check_word_subscript(w)?;
            Ok(RFormula::Atom(RAtom::Prefix(w.clone(), conv_term(t)?)))
        }
        ("D", [Term::Nat(i), t, u]) => Ok(RFormula::Atom(RAtom::AtLeast(
            *i as usize,
            conv_term(t)?,
            conv_term(u)?,
        ))),
        ("E", [Term::Nat(i), t, u]) => Ok(RFormula::Atom(RAtom::Exact(
            *i as usize,
            conv_term(t)?,
            conv_term(u)?,
        ))),
        _ => Err(DomainError::UnsupportedSymbol {
            symbol: format!("{name}/{}", args.len()),
        }),
    }
}

fn conv_term(t: &Term) -> Result<RTerm, DomainError> {
    match t {
        Term::Var(v) => Ok(RTerm::Var(v.to_string())),
        Term::Str(s) => {
            if fq_turing::sym::in_domain_alphabet(s) {
                Ok(RTerm::Lit(s.clone()))
            } else {
                Err(DomainError::SortMismatch {
                    detail: format!("\"{s}\" is not over the trace alphabet {{1,&,*,#}}"),
                })
            }
        }
        Term::App(f, args) => match (f.as_str(), args.as_slice()) {
            ("w", [inner]) => Ok(RTerm::w_of(conv_term(inner)?)),
            ("m", [inner]) => Ok(RTerm::m_of(conv_term(inner)?)),
            _ => Err(DomainError::UnsupportedSymbol {
                symbol: format!("{f}/{}", args.len()),
            }),
        },
        Term::Nat(_) => Err(DomainError::SortMismatch {
            detail: format!("numeral {t} has no interpretation in the trace domain"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;
    use fq_turing::builders;
    use fq_turing::encode::encode_machine;
    use fq_turing::trace::trace_string;

    #[test]
    fn nested_functions_collapse() {
        let t = RTerm::w_of(RTerm::w_of(RTerm::Var("x".into())));
        assert_eq!(t, RTerm::Lit(String::new()));
        let t2 = RTerm::m_of(RTerm::w_of(RTerm::Var("x".into())));
        assert_eq!(t2, RTerm::Lit(String::new()));
    }

    #[test]
    fn ground_w_and_m_fold() {
        let m = builders::scan_right_halt_on_blank();
        let tr = trace_string(&m, "11", 2).unwrap();
        assert_eq!(RTerm::w_of(RTerm::Lit(tr.clone())), RTerm::Lit("11".into()));
        assert_eq!(RTerm::m_of(RTerm::Lit(tr)), RTerm::Lit(encode_machine(&m)));
        // Non-traces map to ε.
        assert_eq!(
            RTerm::w_of(RTerm::Lit("11".into())),
            RTerm::Lit(String::new())
        );
    }

    #[test]
    fn p_translates_to_reach_signature() {
        let f = parse_formula("P(x, y, z)").unwrap();
        let r = from_logic(&f).unwrap();
        match r {
            RFormula::And(parts) => {
                assert_eq!(parts.len(), 3);
                assert!(matches!(
                    parts[0],
                    RFormula::Atom(RAtom::IsSort(Sort::Trace, _))
                ));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn conversion_accepts_reach_predicates() {
        for s in [
            "M(x) | W(x) | T(x) | O(x)",
            "B(\"11&\", x)",
            "D(3, x, y) & E(2, m(z), \"1\")",
            "w(z) = \"11\"",
        ] {
            assert!(from_logic(&parse_formula(s).unwrap()).is_ok(), "{s}");
        }
    }

    #[test]
    fn conversion_rejects_foreign_symbols() {
        assert!(from_logic(&parse_formula("x < y").unwrap()).is_err());
        assert!(from_logic(&parse_formula("x = 3").unwrap()).is_err());
        assert!(from_logic(&parse_formula("B(\"1*\", x)").unwrap()).is_err());
    }

    #[test]
    fn substitution_folds_ground_functions() {
        let a = RAtom::Eq(RTerm::WOf("z".into()), RTerm::Var("y".into()));
        let m = builders::looper();
        let tr = trace_string(&m, "1&", 1).unwrap();
        let s = a.subst("z", &RTerm::Lit(tr));
        assert_eq!(
            s,
            RAtom::Eq(RTerm::Lit("1&".into()), RTerm::Var("y".into()))
        );
    }

    #[test]
    fn mentions_tracks_function_arguments() {
        let a = RAtom::AtLeast(2, RTerm::MOf("x".into()), RTerm::Lit("1".into()));
        assert!(a.mentions("x"));
        assert!(!a.mentions("y"));
    }

    #[test]
    fn display_renders_readably() {
        let a = RFormula::Exists(
            "x".into(),
            Box::new(RFormula::and([
                RFormula::Atom(RAtom::IsSort(Sort::Trace, RTerm::Var("x".into()))),
                RFormula::Atom(RAtom::Eq(RTerm::WOf("x".into()), RTerm::Lit("11".into()))),
                RFormula::Atom(RAtom::AtLeast(
                    3,
                    RTerm::MOf("x".into()),
                    RTerm::Lit("1".into()),
                )),
            ])),
        );
        assert_eq!(
            a.to_string(),
            "exists x. (T(x) & w(x) = \"11\" & D_3(m(x), \"1\"))"
        );
    }

    #[test]
    fn smart_constructors_behave() {
        assert_eq!(
            RFormula::and([RFormula::True, RFormula::True]),
            RFormula::True
        );
        assert_eq!(
            RFormula::or([RFormula::False, RFormula::True]),
            RFormula::True
        );
        assert_eq!(RFormula::not(RFormula::True), RFormula::False);
    }
}
