//! # fq-domains — query domains with decision procedures
//!
//! The paper evaluates the safety question over *domains*: an infinite set
//! of elements together with fixed (possibly infinite) functions and
//! relations. Section 1.1 argues that a practically usable domain must be
//! **recursive** and have a **decidable first-order theory** — decidability
//! is "in effect, equivalent to the ability to answer queries effectively".
//!
//! This crate implements every domain the paper discusses:
//!
//! | Module | Domain | Paper reference |
//! |---|---|---|
//! | [`eq`] | infinite domain, equality only | Section 2 opening |
//! | [`nat_order`] | ⟨ℕ, <⟩ | Fact 2.1, Theorems 2.2/2.5 |
//! | [`int_order`] | ⟨ℤ, <⟩ | "integers with < can be handled similarly" |
//! | [`presburger`] | ⟨ℕ, <, +⟩, decided by Cooper's QE | "this simple trick works for … Presburger arithmetic" |
//! | [`nat_succ`] | ⟨ℕ, ′⟩ (successor, no order) | Section 2.2, Theorems 2.6/2.7 |
//! | [`traces`] | the trace domain **T** and its Reach theory | Section 3 + Appendix |
//! | [`words`] | ⟨{1,&}*, ⊑⟩, length-lex words (iso to ⟨ℕ,<⟩) | Section 2.2 closing remark |
//!
//! Each domain implements [`Domain`] (recursive enumeration of elements)
//! and [`DecidableTheory`] (the decision procedure for pure-domain
//! sentences). The trace domain's decision procedure is the quantifier
//! elimination of Theorem A.3.
//!
//! ```
//! use fq_domains::{DecidableTheory, Presburger, TraceDomain};
//! use fq_logic::parse_formula;
//!
//! // Presburger arithmetic, decided by Cooper's elimination.
//! let parity = parse_formula("forall x. div(2, x, 0) | div(2, x, 1)")?;
//! assert!(Presburger.decide(&parity)?);
//!
//! // The Theory of Traces, decided by the Theorem A.3 elimination.
//! let s = parse_formula("forall m0 w0. M(m0) & W(w0) -> exists p. P(m0, w0, p)")?;
//! assert!(TraceDomain.decide(&s)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod domain;
pub mod eq;
pub mod int_order;
pub mod nat_order;
pub mod nat_succ;
pub mod presburger;
pub mod traces;
pub mod words;

pub use domain::{DecidableTheory, Domain, DomainError};
pub use eq::EqDomain;
pub use int_order::IntOrder;
pub use nat_order::NatOrder;
pub use nat_succ::NatSucc;
pub use presburger::Presburger;
pub use traces::TraceDomain;
pub use words::WordsLlex;
