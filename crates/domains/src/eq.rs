//! The simplest domain: an infinite set with equality only.
//!
//! "The simplest possible example to start with is an infinite domain with
//! the only domain relation of equality. In this case … every finite
//! formula is domain independent" (Section 2). Elements are abstractly the
//! naturals, but *no* arithmetic is available — only `=`.
//!
//! The theory of an infinite pure-equality structure is decidable by a
//! small-model argument: a sentence of quantifier depth `q` mentioning `k`
//! distinct constants holds in the infinite model iff it holds when
//! quantifiers range over the `k` constants plus `q` fresh elements
//! (any two elements outside the named ones are indistinguishable).

use crate::domain::{require_sentence, DecidableTheory, Domain, DomainError};
use fq_logic::eval::{eval_sentence, Interpretation};
use fq_logic::{Formula, LogicError, Term};

/// The infinite pure-equality domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EqDomain;

struct EqInterp;

impl Interpretation for EqInterp {
    type Elem = u64;

    fn nat(&self, n: u64) -> Result<u64, LogicError> {
        Ok(n)
    }

    fn func(&self, name: &str, _args: &[u64]) -> Result<u64, LogicError> {
        Err(LogicError::eval(format!(
            "the equality domain has no functions (got `{name}`)"
        )))
    }

    fn pred(&self, name: &str, _args: &[u64]) -> Result<bool, LogicError> {
        Err(LogicError::eval(format!(
            "the equality domain has no predicates (got `{name}`)"
        )))
    }
}

impl Domain for EqDomain {
    type Elem = u64;

    fn name(&self) -> String {
        "⟨infinite set, =⟩".to_string()
    }

    fn enumerate(&self, n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    fn elem_term(&self, e: &u64) -> Term {
        Term::Nat(*e)
    }

    fn parse_elem(&self, t: &Term) -> Option<u64> {
        match t {
            Term::Nat(n) => Some(*n),
            _ => None,
        }
    }
}

impl DecidableTheory for EqDomain {
    fn decide(&self, sentence: &Formula) -> Result<bool, DomainError> {
        require_sentence(sentence)?;
        // Small-model property: constants + quantifier-depth fresh points.
        let (nats, strs) = sentence.literal_constants();
        if !strs.is_empty() {
            return Err(DomainError::UnsupportedSymbol {
                symbol: format!(
                    "string literal \"{}\"",
                    strs.iter().next().expect("nonempty")
                ),
            });
        }
        let mut universe: Vec<u64> = nats.into_iter().collect();
        let fresh_base = universe.iter().max().map_or(0, |m| m + 1);
        for i in 0..sentence.quantifier_depth() as u64 {
            universe.push(fresh_base + i);
        }
        if universe.is_empty() {
            // A quantifier-free sentence without constants is a boolean
            // combination of True/False; one point suffices.
            universe.push(0);
        }
        Ok(eval_sentence(&EqInterp, &universe, sentence)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fq_logic::parse_formula;

    fn decide(s: &str) -> bool {
        EqDomain.decide(&parse_formula(s).unwrap()).unwrap()
    }

    #[test]
    fn the_domain_is_infinite() {
        // For any x, y there is a z different from both.
        assert!(decide("forall x y. exists z. z != x & z != y"));
        // There are at least 4 distinct elements.
        assert!(decide(
            "exists a b c d. a != b & a != c & a != d & b != c & b != d & c != d"
        ));
    }

    #[test]
    fn no_two_element_bound() {
        // "Every element equals 0 or 1" is false.
        assert!(!decide("forall x. x = 0 | x = 1"));
    }

    #[test]
    fn constants_are_distinct_elements() {
        assert!(decide("0 != 1"));
        assert!(decide("exists x. x = 5"));
    }

    #[test]
    fn quantifier_depth_matters() {
        // ∃x∃y x≠y needs two fresh points — depth 2 provides them.
        assert!(decide("exists x y. x != y"));
    }

    #[test]
    fn equality_axioms() {
        assert!(decide("forall x. x = x"));
        assert!(decide("forall x y. x = y -> y = x"));
        assert!(decide("forall x y z. x = y & y = z -> x = z"));
    }

    #[test]
    fn rejects_arithmetic() {
        assert!(EqDomain
            .decide(&parse_formula("forall x. exists y. x < y").unwrap())
            .is_err());
    }

    #[test]
    fn rejects_string_constants() {
        assert!(EqDomain
            .decide(&parse_formula("exists x. x = \"1\"").unwrap())
            .is_err());
    }
}
