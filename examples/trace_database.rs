//! A database of computational experiments over the trace domain **T**.
//!
//! The paper's conclusion suggests T "is arguably a natural choice in
//! several applications related to storing results of computations, for
//! example in databases of computational experiments." This example
//! stores traces of several machines, queries them with the ternary
//! predicate `P` and the Reach-theory functions `w`/`m`, and uses the
//! Theorem A.3 decision procedure to answer pure-domain questions.
//!
//! ```sh
//! cargo run --example trace_database
//! ```

use finite_queries::query::{DomainId, Executor};
use finite_queries::relational::{Schema, StateBuilder, Value};
use finite_queries::turing::trace::trace_string;
use finite_queries::turing::{builders, encode_machine};

fn main() {
    // Scheme: one unary relation holding experiment logs (traces).
    // Generated corpora load through the batch ingestion path: stage
    // every row in a StateBuilder, merge once in finish().
    let schema = Schema::new().with_relation("Log", 1);
    let mut builder = StateBuilder::new(schema);

    // Run two machines on a few inputs and store every trace prefix.
    let scanner = builders::scan_right_halt_on_blank();
    let eraser = builders::erase_and_halt();
    for machine in [&scanner, &eraser] {
        for word in ["1", "11", "1&1"] {
            let mut k = 1;
            while let Some(t) = trace_string(machine, word, k) {
                builder.row("Log", vec![Value::Str(t)]);
                k += 1;
            }
        }
    }
    let state = builder.finish();
    println!("stored {} traces", state.size());

    let exec = Executor::default();

    // Which logged strings are traces of the scanner in word "11"? The
    // planner routes the safe-range query to active-domain evaluation
    // with the trace-domain operations interpreted.
    let enc = encode_machine(&scanner);
    let q = format!("Log(p) & P(\"{enc}\", \"11\", p)");
    let out = exec.execute(&state, &q, DomainId::Traces).unwrap();
    println!("scanner traces in \"11\": {}", out.rows.len());

    // Group logs by input word using the Reach function w(·).
    let out = exec
        .execute(&state, "Log(p) & w(p) = \"1&1\"", DomainId::Traces)
        .unwrap();
    println!("logs with input word \"1&1\": {}", out.rows.len());

    // Pure-domain questions, decided by the Theorem A.3 quantifier
    // elimination (no state involved):
    let decide = |s: &str| exec.decide(DomainId::Traces, s).unwrap();

    // "Does the scanner have more than three traces in '111'?" — it halts
    // after 3 steps there, so it has exactly 4.
    println!(
        "D_4(scanner, \"111\") = {}",
        decide(&format!("D(4, \"{enc}\", \"111\")"))
    );
    println!(
        "D_5(scanner, \"111\") = {}",
        decide(&format!("D(5, \"{enc}\", \"111\")"))
    );

    // "Is there a machine that halts instantly on '11' but runs at least
    // 4 steps on '&&&&'?" — Lemma A.2 says yes (prefixes diverge).
    println!(
        "∃x (E_1(x,\"11\") ∧ D_4(x,\"&&&&\")) = {}",
        decide("exists x. E(1, x, \"11\") & D(4, x, \"&&&&\")")
    );

    // "Every trace's machine and word satisfy P" — a theorem of T.
    println!(
        "∀p (T(p) → P(m(p), w(p), p)) = {}",
        decide("forall p. T(p) -> P(m(p), w(p), p)")
    );

    // "Some machine has unboundedly many traces in some word" cannot be
    // stated in FO — but for a concrete divergent machine, every bound is
    // exceeded:
    let looper = encode_machine(&builders::looper());
    println!(
        "D_50(looper, \"1\") = {}",
        decide(&format!("D(50, \"{looper}\", \"1\")"))
    );
}
