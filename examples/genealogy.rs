//! The paper's Section 1 example in depth: the father–son database.
//!
//! Builds a genealogy, runs the paper's M(x) ("more than one son") and
//! G(x, z) ("grandfather") queries through the pipeline, demonstrates
//! why M ∨ G is *unsafe* exactly when someone has at least two sons
//! (the paper's footnote 4), and shows the planner compiling the safe
//! queries into relational algebra (Codd's theorem).
//!
//! ```sh
//! cargo run --example genealogy
//! ```

use finite_queries::query::{DomainId, Executor, QueryPlan};
use finite_queries::relational::{Schema, State, Value};

fn person(n: u64) -> Value {
    Value::Nat(n)
}

fn main() {
    let schema = Schema::new().with_relation("F", 2);

    // A three-generation family: 1 fathered 2 and 3; 2 fathered 4; 4
    // fathered 5.
    let state = State::new(schema.clone())
        .with_tuple("F", vec![person(1), person(2)])
        .with_tuple("F", vec![person(1), person(3)])
        .with_tuple("F", vec![person(2), person(4)])
        .with_tuple("F", vec![person(4), person(5)]);

    let m = "exists y z. y != z & F(x, y) & F(x, z)";
    let g = "exists y. F(x, y) & F(y, z)";
    let m_or_g = "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))";

    println!("state: {} father–son facts", state.size());

    let exec = Executor::default();

    // Answer the two safe queries through the pipeline.
    let m_out = exec.execute(&state, m, DomainId::Eq).unwrap();
    println!("M(x)  — fathers of ≥2 sons: {:?}", m_out.rows);
    let g_out = exec.execute(&state, g, DomainId::Eq).unwrap();
    println!("G(x,z) — grandfather pairs: {:?}", g_out.rows);

    // The planner agrees with the syntactic test: M and G compile to
    // algebra, M ∨ G cannot.
    for (name, src) in [("M", m), ("G", g), ("M∨G", m_or_g)] {
        let (planned, _) = exec.plan(&state, src, DomainId::Eq).unwrap();
        println!("{name:<4} strategy: {}", planned.plan.strategy());
    }

    // The paper's footnote: "M(x) ∨ G(x, z) only gives an infinite answer
    // if there is a person who parented two or more sons".
    println!(
        "M∨G finite in this state (someone has 2 sons): {}",
        exec.relative_safety(&state, m_or_g, DomainId::Eq)
            .unwrap()
            .unwrap()
    );
    let single_sons = State::new(schema.clone())
        .with_tuple("F", vec![person(1), person(2)])
        .with_tuple("F", vec![person(2), person(4)]);
    println!(
        "M∨G finite in a single-son state:              {}",
        exec.relative_safety(&single_sons, m_or_g, DomainId::Eq)
            .unwrap()
            .unwrap()
    );

    // Codd's theorem, as the planner applies it: the safe query's plan
    // carries the compiled algebra expression.
    let (planned, _) = exec.plan(&state, g, DomainId::Eq).unwrap();
    if let QueryPlan::Algebra { expr, .. } = &planned.plan {
        let rel = expr.eval(&state);
        println!(
            "G compiled to algebra: attrs {:?}, {} tuples",
            rel.attrs,
            rel.tuples.len()
        );
        assert_eq!(rel.tuples.len(), g_out.rows.len());
    }
}
