//! The paper's Section 1 example in depth: the father–son database.
//!
//! Builds a genealogy, runs the paper's M(x) ("more than one son") and
//! G(x, z) ("grandfather") queries, demonstrates why M ∨ G is *unsafe*
//! exactly when someone has at least two sons (the paper's footnote 4),
//! and compiles the safe queries into relational algebra (Codd's
//! theorem).
//!
//! ```sh
//! cargo run --example genealogy
//! ```

use finite_queries::logic::parse_formula;
use finite_queries::relational::active_eval::{eval_query, NoOps};
use finite_queries::relational::algebra::compile;
use finite_queries::relational::{is_safe_range, Schema, State, Value};
use finite_queries::safety::relative::relative_safety_eq;

fn person(n: u64) -> Value {
    Value::Nat(n)
}

fn main() {
    let schema = Schema::new().with_relation("F", 2);

    // A three-generation family: 1 fathered 2 and 3; 2 fathered 4; 4
    // fathered 5.
    let state = State::new(schema.clone())
        .with_tuple("F", vec![person(1), person(2)])
        .with_tuple("F", vec![person(1), person(3)])
        .with_tuple("F", vec![person(2), person(4)])
        .with_tuple("F", vec![person(4), person(5)]);

    let m = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
    let g = parse_formula("exists y. F(x, y) & F(y, z)").unwrap();
    let m_or_g = parse_formula(
        "(exists y. exists w. y != w & F(x, y) & F(x, w)) | (exists y. F(x, y) & F(y, z))",
    )
    .unwrap();

    println!("state: {} father–son facts", state.size());

    // Answer the two safe queries.
    let m_ans = eval_query(&state, &NoOps, &m, &["x".to_string()]).unwrap();
    println!("M(x)  — fathers of ≥2 sons: {m_ans:?}");
    let g_ans = eval_query(&state, &NoOps, &g, &["x".to_string(), "z".to_string()]).unwrap();
    println!("G(x,z) — grandfather pairs: {g_ans:?}");

    // The syntactic test agrees: M and G are safe-range, M ∨ G is not.
    println!("M safe-range:    {}", is_safe_range(&schema, &m));
    println!("G safe-range:    {}", is_safe_range(&schema, &g));
    println!("M∨G safe-range:  {}", is_safe_range(&schema, &m_or_g));

    // The paper's footnote: "M(x) ∨ G(x, z) only gives an infinite answer
    // if there is a person who parented two or more sons".
    let vars = vec!["x".to_string(), "z".to_string()];
    println!(
        "M∨G finite in this state (someone has 2 sons): {}",
        relative_safety_eq(&state, &m_or_g, &vars).unwrap()
    );
    let single_sons = State::new(schema.clone())
        .with_tuple("F", vec![person(1), person(2)])
        .with_tuple("F", vec![person(2), person(4)]);
    println!(
        "M∨G finite in a single-son state:              {}",
        relative_safety_eq(&single_sons, &m_or_g, &vars).unwrap()
    );

    // Codd's theorem: compile the safe queries to relational algebra and
    // evaluate — same answers, pure algebra.
    let expr = compile(&schema, &g).unwrap();
    let rel = expr.eval(&state);
    println!(
        "G compiled to algebra: attrs {:?}, {} tuples",
        rel.attrs,
        rel.tuples.len()
    );
    assert_eq!(rel.tuples.len(), g_ans.len());
}
