//! The negative theorems, live: Theorem 3.1 (no effective syntax for the
//! finite queries of T) and Theorem 3.3 (relative safety over T is the
//! halting problem).
//!
//! ```sh
//! cargo run --release --example halting_reduction
//! ```

use finite_queries::domains::{DecidableTheory, TraceDomain};
use finite_queries::safety::negative::{
    certify_total, refute_candidate_syntax, total_witnesses, CandidateSyntax, ExactRuntimeSyntax,
    TotalityEnumerator,
};
use finite_queries::safety::relative::{halting_instance, relative_safety_traces};
use finite_queries::safety::safety::SafetyVerdict;
use finite_queries::turing::{builders, encode_machine};

fn main() {
    // ------------------------------------------------------------------
    // Theorem 3.3: relative safety ⟺ halting.
    // ------------------------------------------------------------------
    println!("— Theorem 3.3: relative safety over T is the halting problem —");
    for (name, machine, word) in [
        ("scanner", builders::scan_right_halt_on_blank(), "11111"),
        ("eraser", builders::erase_and_halt(), "111"),
        ("looper", builders::looper(), "1"),
    ] {
        let (query, state) = halting_instance(&machine, word);
        let verdict = relative_safety_traces(&machine, word, 100_000);
        println!(
            "  M(x) = {query} in state c := {:?}: {verdict:?}",
            state.constant("c").unwrap()
        );
        match verdict {
            SafetyVerdict::Finite(Some(n)) => {
                println!("    → {name} halts on {word:?}; the query has exactly {n} answers");
            }
            SafetyVerdict::Unknown { budget_spent } => {
                println!(
                    "    → {name} made {budget_spent} steps without halting; \
                     deciding finiteness here IS deciding halting — impossible in general"
                );
            }
            other => println!("    → {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Theorem 3.1: the reduction from effective syntax to totality.
    // ------------------------------------------------------------------
    println!("\n— Theorem 3.1: any effective syntax enumerates the total machines —");
    let syntax = ExactRuntimeSyntax;
    println!("  candidate syntax: {}", syntax.name());

    // The oracle certifies machines by deciding ∀z∀x(M(x)[z/c] ↔ φ_r(x)[z/c])
    // with the Theorem A.3 procedure. Certified machines ARE total.
    println!("  machines certified among the first 40 (machine, candidate) pairs:");
    for (machine, r) in TotalityEnumerator::new(ExactRuntimeSyntax, 40) {
        println!(
            "    pair {r}: {} ({} states) — certified total",
            encode_machine(&machine),
            machine.n_states()
        );
    }

    // Soundness on a non-total machine: the looper is never certified.
    let looper = builders::looper();
    assert!(certify_total(&looper, &syntax, 40).unwrap().is_none());
    println!("  looper: not certified (it is not total) ✓");

    // Incompleteness: a total machine with input-dependent runtime is
    // missed — the concrete failure Theorem 3.1 predicts for any
    // enumerable candidate.
    match refute_candidate_syntax(&syntax, &total_witnesses(), 40).unwrap() {
        Some(refutation) => {
            println!(
                "  refutation witness: {} — total, finite totality query, \
                 but matched by none of the first {} candidates",
                refutation.machine_str, refutation.candidates_checked
            );
        }
        None => println!("  (no witness found within the budget — unexpected)"),
    }

    // The decision procedure at the heart of the reduction (Cor. A.4):
    let halter = builders::halter();
    let enc = encode_machine(&halter);
    let sentence = finite_queries::logic::parse_formula(&format!(
        "forall z x. P(\"{enc}\", z, x) <-> P(\"{enc}\", z, x) & E(1, \"{enc}\", z)"
    ))
    .unwrap();
    println!(
        "\n  Theory-of-traces decision: halter ≡ (halter ∧ E₁) : {}",
        TraceDomain.decide(&sentence).unwrap()
    );
}
