//! Section 1.2's way out: finitely-representable infinite relations.
//!
//! "Of course we cannot actually generate the infinite relations (not to
//! mention the idea of printing the results). But still, the database
//! remains capable of answering questions of whether a certain tuple
//! belongs to a relation, finite or infinite, or whether a certain fact
//! holds."
//!
//! ```sh
//! cargo run --example constraint_relations
//! ```

use finite_queries::logic::parse_formula;
use finite_queries::safety::finrep::FinRep;

fn main() {
    // An infinite relation: the even numbers.
    let evens = FinRep::new(["x"], parse_formula("div(2, x, 0)").unwrap()).unwrap();
    println!("evens is finite?        {}", evens.is_finite().unwrap());
    println!("evens contains 41?      {}", evens.contains(&[41]).unwrap());
    println!("evens contains 42?      {}", evens.contains(&[42]).unwrap());

    // Its complement — something no finite-relation database can store.
    let odds = evens.complement();
    println!("complement contains 41? {}", odds.contains(&[41]).unwrap());

    // Intersecting two infinite relations can give a finite one; the
    // Theorem 2.5 criterion detects it and the tuples can be printed.
    let small = FinRep::new(["x"], parse_formula("x < 20").unwrap()).unwrap();
    let small_evens = evens.intersect(&small).unwrap();
    println!(
        "evens ∩ [0,20) finite?  {} → {:?}",
        small_evens.is_finite().unwrap(),
        small_evens.enumerate(100).unwrap().unwrap()
    );

    // The successor graph, joined with itself, projected — all by formula
    // manipulation, with Cooper's elimination keeping representations
    // quantifier-free.
    let succ = FinRep::new(["x", "y"], parse_formula("y = x + 1").unwrap()).unwrap();
    let succ2 = FinRep::new(["y", "z"], parse_formula("z = y + 1").unwrap()).unwrap();
    let grand = succ.join(&succ2);
    println!(
        "succ ⋈ succ contains (3,4,5)? {}",
        grand.contains(&[3, 4, 5]).unwrap()
    );
    let skip = grand.project(&["x", "z"]).unwrap();
    println!(
        "project keeps it quantifier-free: {}",
        skip.formula().is_quantifier_free()
    );
    println!(
        "x+2 relation contains (3,5)? {}",
        skip.contains(&[3, 5]).unwrap()
    );

    // Selection turns the infinite +2 relation finite.
    let banded = skip
        .select(parse_formula("x > 1 & x < 6").unwrap())
        .unwrap();
    println!(
        "banded tuples: {:?}",
        banded.enumerate(10).unwrap().unwrap()
    );
}
