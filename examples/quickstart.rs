//! Quickstart: define a scheme, load a state, ask queries through the
//! compile → plan → execute pipeline, check safety.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use finite_queries::query::{DomainId, Executor};
use finite_queries::relational::{Schema, State, Value};

fn main() {
    // The paper's running example: a father–son relation F.
    let schema = Schema::new().with_relation("F", 2);
    let state = State::new(schema.clone())
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)]);

    let exec = Executor::default();

    // M(x): "those x's who have more than one son". The planner sees the
    // query is safe-range and compiles it to relational algebra.
    let m = "exists y z. y != z & F(x, y) & F(x, z)";
    let out = exec.execute(&state, m, DomainId::Eq).unwrap();
    println!(
        "M(x) answers: {:?} (strategy: {})",
        out.rows,
        out.plan.strategy()
    );

    // The syntactic safety check (an effective syntax for
    // domain-independent queries):
    let compiled_m = exec.compile(&schema, m).unwrap();
    println!("M(x) safe-range?     {}", compiled_m.safe_range().is_ok());
    let unsafe_q = "!F(x, y)";
    let compiled_neg = exec.compile(&schema, unsafe_q).unwrap();
    println!("¬F(x,y) safe-range?  {}", compiled_neg.safe_range().is_ok());

    // Relative safety over ⟨N, <⟩ (Theorem 2.5): is the answer finite in
    // THIS state, even if the formula is unsafe in general?
    println!(
        "¬F(x,y) finite here? {}",
        exec.relative_safety(&state, unsafe_q, DomainId::Nat)
            .unwrap()
            .unwrap()
    );

    // The Section 1.1 algorithm: an unsafe query goes down the
    // enumerate-and-ask path, with termination certified by the domain's
    // decision procedure. The plan records why.
    let (planned, _) = exec.plan(&state, unsafe_q, DomainId::Nat).unwrap();
    println!("¬F(x,y) plan: {}", planned.plan.strategy());
    println!("  why: {}", planned.plan.justification());
    let out = exec
        .execute(&state, "exists y. F(x, y) & F(y, z)", DomainId::Nat)
        .unwrap();
    println!(
        "G(x,z) via the pipeline: {:?} (complete: {})",
        out.rows,
        out.is_complete()
    );
}
