//! Quickstart: define a scheme, load a state, ask queries, check safety.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use finite_queries::domains::NatOrder;
use finite_queries::logic::parse_formula;
use finite_queries::relational::active_eval::{eval_query, NoOps};
use finite_queries::relational::{is_safe_range, Schema, State, Value};
use finite_queries::safety::answer::answer_query;
use finite_queries::safety::relative::relative_safety_nat;

fn main() {
    // The paper's running example: a father–son relation F.
    let schema = Schema::new().with_relation("F", 2);
    let state = State::new(schema.clone())
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)]);

    // M(x): "those x's who have more than one son".
    let m = parse_formula("exists y z. y != z & F(x, y) & F(x, z)").unwrap();
    let answers = eval_query(&state, &NoOps, &m, &["x".to_string()]).unwrap();
    println!("M(x) answers: {answers:?}");

    // The syntactic safety check (an effective syntax for
    // domain-independent queries):
    println!("M(x) safe-range?     {}", is_safe_range(&schema, &m));
    let unsafe_q = parse_formula("!F(x, y)").unwrap();
    println!("¬F(x,y) safe-range?  {}", is_safe_range(&schema, &unsafe_q));

    // Relative safety over ⟨N, <⟩ (Theorem 2.5): is the answer finite in
    // THIS state, even if the formula is unsafe in general?
    let vars = vec!["x".to_string(), "y".to_string()];
    println!(
        "¬F(x,y) finite here? {}",
        relative_safety_nat(&state, &unsafe_q, &vars).unwrap()
    );

    // The Section 1.1 algorithm: answer a query by enumerate-and-ask,
    // with termination certified by the domain's decision procedure.
    let out = answer_query(&NatOrder, &state, &m, &["x".to_string()], 1000).unwrap();
    println!(
        "enumerate-and-ask: {:?} (complete: {})",
        out.found(),
        out.is_complete()
    );
}
