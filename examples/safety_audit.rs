//! Audit a batch of queries with every safety tool in the library.
//!
//! For each query: the syntactic safe-range test, the Theorem 2.2
//! finitization equivalence over Presburger, the Theorem 2.5 relative
//! safety in a concrete state, the strategy the planner picks — and the
//! effective-syntax transforms that repair the unsafe ones.
//!
//! ```sh
//! cargo run --example safety_audit
//! ```

use finite_queries::domains::{DecidableTheory, Presburger};
use finite_queries::query::{DomainId, Executor};
use finite_queries::relational::{translate_to_domain_formula, Schema, State, Value};
use finite_queries::safety::finitize;
use finite_queries::safety::syntax::ActiveDomainSyntax;

fn main() {
    let schema = Schema::new().with_relation("F", 2);
    let state = State::new(schema.clone())
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)]);

    let queries = [
        ("sons of x", "F(x, y)"),
        ("two sons", "exists y z. y != z & F(x, y) & F(x, z)"),
        ("non-edges", "!F(x, y)"),
        (
            "above all",
            "forall y. (exists p. F(y, p) | F(p, y)) -> x > y",
        ),
        (
            "below all",
            "forall y. (exists p. F(y, p) | F(p, y)) -> x < y",
        ),
        ("diagonal", "x = y"),
    ];

    let exec = Executor::default();

    println!(
        "{:<12} {:>11} {:>15} {:>15}   strategy",
        "query", "safe-range", "finite (always)", "finite (state)"
    );
    for (name, src) in queries {
        let compiled = exec.compile(&schema, src).unwrap();

        // 1. Syntactic test (sound for domain independence, incomplete).
        let sr = compiled.safe_range().is_ok();

        // 2. Semantic finiteness over Presburger, universally: the query
        //    is finite in EVERY state iff its translation is equivalent to
        //    its finitization for the worst case we can test — here we
        //    check the given state's translation against the finitization
        //    of the *open* formula (sound for this state).
        let translated = translate_to_domain_formula(&compiled.query, &state);
        let finite_semantically = Presburger
            .equivalent(&translated, &finitize(&translated))
            .unwrap();

        // 3. Relative safety (Theorem 2.5) in the concrete state.
        let finite_here = exec
            .relative_safety(&state, src, DomainId::Nat)
            .unwrap()
            .unwrap();

        // 4. What the planner decides to do about it.
        let (planned, _) = exec.plan(&state, src, DomainId::Nat).unwrap();

        println!(
            "{:<12} {:>11} {:>15} {:>15}   {}",
            name,
            sr,
            finite_semantically,
            finite_here,
            planned.plan.strategy()
        );
    }

    // Repairing an unsafe query with the active-domain syntax.
    println!("\nRepair with the active-domain effective syntax:");
    let syntax = ActiveDomainSyntax {
        schema: schema.clone(),
    };
    let unsafe_q = exec.compile(&schema, "!F(x, y)").unwrap();
    let repaired = syntax.transform(&unsafe_q.query);
    println!("  ¬F(x,y)   safe-range: {}", unsafe_q.safe_range().is_ok());
    let repaired_src = repaired.to_string();
    let compiled_repair = exec.compile(&schema, &repaired_src).unwrap();
    println!(
        "  transform safe-range: {}",
        compiled_repair.safe_range().is_ok()
    );
    println!(
        "  transform finite here: {}",
        exec.relative_safety(&state, &repaired_src, DomainId::Nat)
            .unwrap()
            .unwrap()
    );
}
