//! Audit a batch of queries with every safety tool in the library.
//!
//! For each query: the syntactic safe-range test, the Theorem 2.2
//! finitization equivalence over Presburger, the Theorem 2.5 relative
//! safety in a concrete state, and the effective-syntax transforms that
//! repair the unsafe ones.
//!
//! ```sh
//! cargo run --example safety_audit
//! ```

use finite_queries::domains::{DecidableTheory, Presburger};
use finite_queries::logic::parse_formula;
use finite_queries::relational::{
    is_safe_range, translate_to_domain_formula, Schema, State, Value,
};
use finite_queries::safety::finitize;
use finite_queries::safety::relative::relative_safety_nat;
use finite_queries::safety::syntax::ActiveDomainSyntax;

fn main() {
    let schema = Schema::new().with_relation("F", 2);
    let state = State::new(schema.clone())
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(2)])
        .with_tuple("F", vec![Value::Nat(1), Value::Nat(3)])
        .with_tuple("F", vec![Value::Nat(2), Value::Nat(4)]);

    let queries = [
        ("sons of x", "F(x, y)"),
        ("two sons", "exists y z. y != z & F(x, y) & F(x, z)"),
        ("non-edges", "!F(x, y)"),
        (
            "above all",
            "forall y. (exists p. F(y, p) | F(p, y)) -> x > y",
        ),
        (
            "below all",
            "forall y. (exists p. F(y, p) | F(p, y)) -> x < y",
        ),
        ("diagonal", "x = y"),
    ];

    println!(
        "{:<12} {:>11} {:>15} {:>15}",
        "query", "safe-range", "finite (always)", "finite (state)"
    );
    for (name, src) in queries {
        let q = parse_formula(src).unwrap();
        let vars: Vec<String> = q.free_vars().into_iter().collect();

        // 1. Syntactic test (sound for domain independence, incomplete).
        let sr = is_safe_range(&schema, &q);

        // 2. Semantic finiteness over Presburger, universally: the query
        //    is finite in EVERY state iff its translation is equivalent to
        //    its finitization for the worst case we can test — here we
        //    check the given state's translation against the finitization
        //    of the *open* formula (sound for this state).
        let translated = translate_to_domain_formula(&q, &state);
        let finite_semantically = Presburger
            .equivalent(&translated, &finitize(&translated))
            .unwrap();

        // 3. Relative safety (Theorem 2.5) in the concrete state.
        let finite_here = relative_safety_nat(&state, &q, &vars).unwrap();

        println!(
            "{:<12} {:>11} {:>15} {:>15}",
            name, sr, finite_semantically, finite_here
        );
    }

    // Repairing an unsafe query with the active-domain syntax.
    println!("\nRepair with the active-domain effective syntax:");
    let syntax = ActiveDomainSyntax {
        schema: schema.clone(),
    };
    let unsafe_q = parse_formula("!F(x, y)").unwrap();
    let repaired = syntax.transform(&unsafe_q);
    println!(
        "  ¬F(x,y)   safe-range: {}",
        is_safe_range(&schema, &unsafe_q)
    );
    println!(
        "  transform safe-range: {}",
        is_safe_range(&schema, &repaired)
    );
    let vars = vec!["x".to_string(), "y".to_string()];
    println!(
        "  transform finite here: {}",
        relative_safety_nat(&state, &repaired, &vars).unwrap()
    );
}
