//! The effective syntaxes side by side — Section 2's positive program.
//!
//! For each domain with an effective syntax, take an *unsafe* query, run
//! it through the domain's syntax transform, and verify (with the
//! domain's own decision procedure) that the result is finite and that
//! already-finite queries are preserved.
//!
//! ```sh
//! cargo run --example effective_syntax
//! ```

use finite_queries::domains::{DecidableTheory, NatSucc, Presburger};
use finite_queries::logic::parse_formula;
use finite_queries::logic::Term;
use finite_queries::relational::{translate_to_domain_formula, Schema, State, Value};
use finite_queries::safety::enumerate::FormulaSpace;
use finite_queries::safety::finitize;
use finite_queries::safety::syntax::{ActiveDomainSyntax, FinitizationSyntax, SuccessorSyntax};

fn main() {
    // ------------------------------------------------------------------
    // Theorem 2.2: the finitization syntax for ⟨N, <⟩ and its extensions.
    // ------------------------------------------------------------------
    println!("— Theorem 2.2: finitization over Presburger —");
    for (desc, src) in [
        ("finite   ", "x < 9"),
        ("finite   ", "2 * x = 14"),
        ("infinite ", "x > 9"),
        ("infinite ", "div(3, x, 0)"),
    ] {
        let phi = parse_formula(src).unwrap();
        let fin = finitize(&phi);
        let preserved = Presburger.equivalent(&phi, &fin).unwrap();
        // The finitization itself is always finite:
        let fin_finite = Presburger.equivalent(&fin, &finitize(&fin)).unwrap();
        println!(
            "  {desc} {src:<16} preserved = {preserved:<5} finitization finite = {fin_finite}"
        );
    }

    // The *enumerated* syntax: the first members of "the set of the
    // finitizations of all formulas".
    let syntax = FinitizationSyntax {
        space: FormulaSpace {
            predicates: vec![("<".into(), 2)],
            constants: vec![Term::Nat(0), Term::Nat(5)],
            variables: vec!["x".to_string()],
            unary_functions: vec![],
            with_equality: true,
        },
    };
    println!("\n  first enumerated members (all finite by construction):");
    for (i, member) in syntax.enumerate(4).into_iter().enumerate() {
        println!("    φ_{i} = {member}");
    }

    // ------------------------------------------------------------------
    // Theorem 2.7: the extended-active-domain syntax for ⟨N, ′⟩.
    // ------------------------------------------------------------------
    println!("\n— Theorem 2.7: extended active domain over ⟨N,′⟩ —");
    let schema = Schema::new().with_relation("R", 1);
    let state = State::new(schema.clone()).with_tuple("R", vec![Value::Nat(5)]);
    let succ = SuccessorSyntax {
        schema: schema.clone(),
    };
    let queries = [
        ("finite   ", "exists y. R(y) & x = y''"),
        ("infinite ", "!R(x)"),
    ];
    for (desc, src) in queries {
        let phi = parse_formula(src).unwrap();
        let q = phi.quantifier_depth();
        let t = succ.transform(&phi);
        let phi_d = translate_to_domain_formula(&phi, &state);
        let t_d = translate_to_domain_formula(&t, &state);
        let preserved = NatSucc.equivalent(&phi_d, &t_d).unwrap();
        let qf = NatSucc.quantifier_eliminate(&t_d).unwrap();
        let finite = NatSucc
            .solution_set_finite(&qf, &["x".to_string()])
            .unwrap();
        println!(
            "  {desc} {src:<26} radius 2^{q} = {}  preserved = {preserved:<5} transform finite = {finite}",
            SuccessorSyntax::radius(&phi)
        );
    }

    // ------------------------------------------------------------------
    // The equality domain: restrict to the active domain.
    // ------------------------------------------------------------------
    println!("\n— Equality domain: active-domain restriction —");
    let ad = ActiveDomainSyntax { schema };
    let unsafe_q = parse_formula("!R(x)").unwrap();
    let repaired = ad.transform(&unsafe_q);
    println!("  ¬R(x)  ↦  {repaired}");
    println!(
        "  (safe-range after repair: {})",
        finite_queries::relational::is_safe_range(&ad.schema, &repaired)
    );
}
